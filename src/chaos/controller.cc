#include "chaos/controller.h"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "common/logging.h"
#include "obs/metric_registry.h"

namespace deco {

std::string ChaosAuditEntry::Describe() const {
  std::ostringstream out;
  out << "@" << scheduled_at / kNanosPerMilli << "ms "
      << (is_restore ? "restore-" : "") << FaultKindName(kind) << " "
      << target;
  if (!detail.empty()) out << " (" << detail << ")";
  return out.str();
}

ChaosController::ChaosController(NetworkFabric* fabric, Clock* clock)
    : fabric_(fabric), clock_(clock) {}

ChaosController::~ChaosController() { Stop(); }

void ChaosController::AddRateHandle(
    const std::string& node_name,
    std::shared_ptr<std::atomic<double>> handle) {
  rate_handles_[node_name] = std::move(handle);
}

Status ChaosController::Prepare(const ChaosSchedule& schedule) {
  DECO_RETURN_NOT_OK(schedule.Validate());

  std::map<std::string, NodeId> by_name;
  for (NodeId id = 0; id < fabric_->node_count(); ++id) {
    by_name[fabric_->node_name(id)] = id;
  }

  actions_.clear();
  saved_.clear();
  next_action_.store(0, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(mu_);
    audit_.clear();
  }

  const std::vector<FaultEvent>& events = schedule.events();
  for (size_t i = 0; i < events.size(); ++i) {
    const FaultEvent& e = events[i];
    auto it = by_name.find(e.target);
    if (it == by_name.end()) {
      return Status::InvalidArgument("chaos target '" + e.target +
                                     "' is not a registered node");
    }
    if (e.kind == FaultKind::kRateSurge &&
        rate_handles_.find(e.target) == rate_handles_.end()) {
      return Status::InvalidArgument("chaos surge target '" + e.target +
                                     "' has no ingest rate handle");
    }
    Action apply;
    apply.at = e.at_nanos;
    apply.kind = e.kind;
    apply.node = it->second;
    apply.event_id = i;
    apply.target = e.target;
    apply.event = e;
    actions_.push_back(apply);

    const bool duration_style = e.kind == FaultKind::kDropBurst ||
                                e.kind == FaultKind::kLatencySpike ||
                                e.kind == FaultKind::kPartition ||
                                e.kind == FaultKind::kRateSurge;
    if (duration_style && e.duration_nanos > 0) {
      Action restore = apply;
      restore.at = e.at_nanos + e.duration_nanos;
      restore.is_restore = true;
      actions_.push_back(std::move(restore));
    }
  }

  // Ties resolve in schedule order (stable), which Validate treats as the
  // semantics for crash/restart pairing.
  std::stable_sort(actions_.begin(), actions_.end(),
                   [](const Action& a, const Action& b) { return a.at < b.at; });
  return Status::OK();
}

Status ChaosController::ApplyLinkFault(const Action& action,
                                       std::string* detail) {
  const size_t n = fabric_->node_count();
  size_t touched = 0;
  std::lock_guard<std::mutex> lock(mu_);
  auto& saved = saved_[action.event_id];
  for (NodeId other = 0; other < n; ++other) {
    if (other == action.node) continue;
    const std::pair<NodeId, NodeId> out_key{action.node, other};
    const std::pair<NodeId, NodeId> in_key{other, action.node};
    for (const auto& key : {out_key, in_key}) {
      DECO_ASSIGN_OR_RETURN(LinkConfig config,
                            fabric_->GetLinkConfig(key.first, key.second));
      if (!action.is_restore) {
        saved[key] = config;
        if (action.kind == FaultKind::kDropBurst) {
          config.drop_probability = action.event.drop_probability;
        } else {
          config.latency_nanos = action.event.latency_nanos;
        }
      } else {
        // Put back only the field this fault displaced; concurrent faults
        // may own the other fields by now.
        auto it = saved.find(key);
        if (it == saved.end()) continue;
        if (action.kind == FaultKind::kDropBurst) {
          config.drop_probability = it->second.drop_probability;
        } else {
          config.latency_nanos = it->second.latency_nanos;
        }
      }
      DECO_RETURN_NOT_OK(
          fabric_->SetLinkConfig(key.first, key.second, config));
      ++touched;
    }
  }
  std::ostringstream out;
  if (action.kind == FaultKind::kDropBurst) {
    out << "drop_probability="
        << (action.is_restore ? "restored" : std::to_string(
                                                 action.event.drop_probability))
        << " on " << touched << " links";
  } else {
    out << "latency="
        << (action.is_restore
                ? "restored"
                : std::to_string(action.event.latency_nanos / kNanosPerMilli) +
                      "ms")
        << " on " << touched << " links";
  }
  *detail = out.str();
  return Status::OK();
}

Status ChaosController::ApplyAction(const Action& action,
                                    TimeNanos fired_at) {
  std::string detail;
  Status status = Status::OK();
  switch (action.kind) {
    case FaultKind::kCrash:
      status = fabric_->SetNodeDown(action.node, true);
      detail = "node down";
      MetricRegistry::Global()->counter("chaos.crashes")->Increment();
      break;
    case FaultKind::kRestart:
      status = fabric_->SetNodeDown(action.node, false);
      detail = "node up, incarnation " +
               std::to_string(fabric_->node_incarnation(action.node));
      MetricRegistry::Global()->counter("chaos.restarts")->Increment();
      break;
    case FaultKind::kDropBurst:
    case FaultKind::kLatencySpike:
      status = ApplyLinkFault(action, &detail);
      break;
    case FaultKind::kPartition:
      status = fabric_->PartitionNode(action.node, !action.is_restore);
      detail = action.is_restore ? "healed" : "isolated";
      break;
    case FaultKind::kRateSurge: {
      auto it = rate_handles_.find(action.target);
      if (it == rate_handles_.end()) {
        status = Status::InvalidArgument("no rate handle for '" +
                                         action.target + "'");
        break;
      }
      const double factor =
          action.is_restore ? 1.0 : action.event.rate_factor;
      it->second->store(factor, std::memory_order_release);
      detail = "rate x" + std::to_string(factor);
      break;
    }
  }
  DECO_RETURN_NOT_OK(status);

  ChaosAuditEntry entry;
  entry.scheduled_at = action.at;
  entry.fired_at_nanos = fired_at;
  entry.kind = action.kind;
  entry.is_restore = action.is_restore;
  entry.target = action.target;
  entry.detail = detail;
  {
    std::lock_guard<std::mutex> lock(mu_);
    audit_.push_back(std::move(entry));
  }
  MetricRegistry::Global()->counter("chaos.events_fired")->Increment();
  return Status::OK();
}

Status ChaosController::ApplyDue(TimeNanos offset) {
  // Actions fire strictly in compiled order; `next_action_` is only
  // advanced here, under no lock — callers are the single firing thread or
  // a single-threaded test driver.
  size_t i = next_action_.load(std::memory_order_acquire);
  while (i < actions_.size() && actions_[i].at <= offset) {
    DECO_RETURN_NOT_OK(
        ApplyAction(actions_[i], clock_->NowNanos()));
    next_action_.store(++i, std::memory_order_release);
  }
  return Status::OK();
}

Status ChaosController::Start() {
  if (actions_.empty()) return Status::OK();
  std::lock_guard<std::mutex> lock(thread_mu_);
  if (started_) return Status::AlreadyExists("controller already started");
  started_ = true;
  stop_requested_ = false;
  start_nanos_ = clock_->NowNanos();
  if (sim_ != nullptr) {
    // Sim mode: one timer event per compiled action. `ApplyDue` keeps the
    // strictly-in-order firing contract even when offsets collide, and the
    // events run serialized on the sim driver, so no firing thread exists.
    for (const Action& action : actions_) {
      const TimeNanos offset = action.at;
      sim_->ScheduleAt(start_nanos_ + offset, [this, offset] {
        {
          std::lock_guard<std::mutex> stop_lock(thread_mu_);
          if (stop_requested_) return;
        }
        Status status = ApplyDue(offset);
        if (!status.ok()) {
          DECO_LOG(ERROR) << "chaos: applying scheduled fault failed: "
                          << status.ToString();
        }
      });
    }
    return Status::OK();
  }
  thread_ = std::thread([this] { RunLoop(); });
  return Status::OK();
}

void ChaosController::RunLoop() {
  std::unique_lock<std::mutex> lock(thread_mu_);
  while (!stop_requested_) {
    const size_t i = next_action_.load(std::memory_order_acquire);
    if (i >= actions_.size()) break;
    const TimeNanos due = start_nanos_ + actions_[i].at;
    const TimeNanos now = clock_->NowNanos();
    if (due > now) {
      thread_cv_.wait_for(lock, std::chrono::nanoseconds(due - now));
      continue;
    }
    lock.unlock();
    Status status = ApplyDue(now - start_nanos_);
    if (!status.ok()) {
      DECO_LOG(ERROR) << "chaos: applying scheduled fault failed: "
                      << status.ToString();
    }
    lock.lock();
  }
}

void ChaosController::Stop() {
  {
    std::lock_guard<std::mutex> lock(thread_mu_);
    if (!started_) return;
    stop_requested_ = true;
  }
  thread_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

std::vector<ChaosAuditEntry> ChaosController::AuditLog() const {
  std::lock_guard<std::mutex> lock(mu_);
  return audit_;
}

}  // namespace deco
