#include "sim/scheduler.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "common/logging.h"

namespace deco {

namespace {

// Thread-local identity: which scheduler (if any) the current thread belongs
// to, and whether it is a granted task thread (may block) or the driver
// executing a timer callback (must not).
struct SimTls {
  SimScheduler* sched = nullptr;
  bool on_task = false;
};
thread_local SimTls g_sim_tls;

}  // namespace

SimScheduler* SimScheduler::Current() { return g_sim_tls.sched; }

bool SimScheduler::OnSimTask() {
  return g_sim_tls.sched != nullptr && g_sim_tls.on_task;
}

SimScheduler::SimScheduler(uint64_t seed, TimeNanos start_nanos)
    : clock_(start_nanos), rng_(seed) {}

SimScheduler::~SimScheduler() {
#ifndef NDEBUG
  std::lock_guard<std::mutex> lock(mu_);
  for (const Task& task : tasks_) {
    assert(task.state == TaskState::kDone ||
           task.state == TaskState::kNotStarted);
  }
#endif
}

SimTaskId SimScheduler::AddTask(std::string name) {
  std::lock_guard<std::mutex> lock(mu_);
  Task task;
  task.name = std::move(name);
  tasks_.push_back(std::move(task));
  return tasks_.size() - 1;
}

void SimScheduler::ScheduleAt(TimeNanos at_nanos,
                              std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    TimerEvent event;
    event.at = std::max(at_nanos, clock_.NowNanos());
    event.seq = next_event_seq_++;
    event.fn = std::move(fn);
    events_.push(std::move(event));
  }
  cv_.notify_all();
}

void SimScheduler::TaskMain(SimTaskId id, const std::function<void()>& body) {
  g_sim_tls.sched = this;
  g_sim_tls.on_task = true;
  {
    std::unique_lock<std::mutex> lock(mu_);
    Task& me = tasks_[id];
    me.state = TaskState::kRunnable;
    cv_.notify_all();
    cv_.wait(lock, [&] { return me.state == TaskState::kRunning; });
  }
  body();
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_[id].state = TaskState::kDone;
    running_ = kInvalidSimTask;
  }
  cv_.notify_all();
  g_sim_tls = SimTls{};
}

void SimScheduler::WaitUntil(std::function<bool()> pred,
                             TimeNanos deadline_nanos) {
  assert(OnSimTask() && g_sim_tls.sched == this &&
         "WaitUntil outside a granted sim task");
  std::unique_lock<std::mutex> lock(mu_);
  const SimTaskId id = running_;
  assert(id != kInvalidSimTask);
  Task& me = tasks_[id];
  me.pred = std::move(pred);
  me.deadline = deadline_nanos;
  me.state = TaskState::kBlocked;
  running_ = kInvalidSimTask;
  cv_.notify_all();
  cv_.wait(lock, [&] { return me.state == TaskState::kRunning; });
}

void SimScheduler::SleepFor(TimeNanos delta_nanos) {
  if (delta_nanos <= 0) {
    Yield();
    return;
  }
  WaitUntil(nullptr, clock_.NowNanos() + delta_nanos);
}

void SimScheduler::Yield() {
  assert(OnSimTask() && g_sim_tls.sched == this);
  std::unique_lock<std::mutex> lock(mu_);
  const SimTaskId id = running_;
  assert(id != kInvalidSimTask);
  Task& me = tasks_[id];
  me.state = TaskState::kRunnable;
  running_ = kInvalidSimTask;
  cv_.notify_all();
  cv_.wait(lock, [&] { return me.state == TaskState::kRunning; });
}

Status SimScheduler::RunUntilTaskDone(SimTaskId id) {
  return Run(RunMode::kUntilTaskDone, id);
}

Status SimScheduler::RunUntilQuiescent() {
  return Run(RunMode::kUntilQuiescent, kInvalidSimTask);
}

Status SimScheduler::DrainAll() {
  return Run(RunMode::kDrainAll, kInvalidSimTask);
}

std::string SimScheduler::BlockedTaskNamesLocked() const {
  std::string names;
  for (const Task& task : tasks_) {
    if (task.state == TaskState::kBlocked) {
      if (!names.empty()) names += ", ";
      names += task.name;
    }
  }
  return names.empty() ? "<none>" : names;
}

Status SimScheduler::Run(RunMode mode, SimTaskId target) {
  const bool dbg = std::getenv("DECO_SIM_DEBUG") != nullptr;
  std::unique_lock<std::mutex> lock(mu_);
  if (driving_) {
    return Status::Internal("SimScheduler::Run is not reentrant");
  }
  driving_ = true;
  Status result = Status::OK();

  const auto mode_done = [&]() -> bool {
    switch (mode) {
      case RunMode::kUntilTaskDone:
        return tasks_[target].state == TaskState::kDone;
      case RunMode::kDrainAll:
        for (const Task& task : tasks_) {
          if (task.state != TaskState::kDone) return false;
        }
        return true;
      case RunMode::kUntilQuiescent:
        return false;  // decided at the no-progress point below
    }
    return false;
  };

  while (true) {
    if (mode != RunMode::kUntilQuiescent && mode_done()) break;

    // A registered task whose thread has not yet reached TaskMain is a
    // startup race the simulation must not observe: wait for it to check
    // in before making any scheduling decision.
    const bool waiting_for_threads =
        std::any_of(tasks_.begin(), tasks_.end(), [](const Task& t) {
          return t.state == TaskState::kNotStarted;
        });
    if (waiting_for_threads) {
      if (dbg) std::fprintf(stderr, "[sim] waiting for task check-in\n");
      cv_.wait(lock, [&] {
        return std::none_of(tasks_.begin(), tasks_.end(), [](const Task& t) {
          return t.state == TaskState::kNotStarted;
        });
      });
      continue;
    }

    const TimeNanos now = clock_.NowNanos();

    // 1. Fire the earliest due timer event, with the lock released so the
    //    callback may push mailboxes, schedule more events, etc.
    if (!events_.empty() && events_.top().at <= now) {
      TimerEvent event = std::move(const_cast<TimerEvent&>(events_.top()));
      events_.pop();
      ++steps_;
      if (dbg && steps_ % 64 == 0) {
        std::fprintf(stderr, "[sim] step %llu: event at t=%lld\n",
                     (unsigned long long)steps_, (long long)event.at);
      }
      lock.unlock();
      g_sim_tls.sched = this;
      g_sim_tls.on_task = false;
      event.fn();
      g_sim_tls = SimTls{};
      lock.lock();
      continue;
    }

    // 2. Wake sweep: promote blocked tasks whose predicate now holds or
    //    whose virtual deadline has passed. Deterministic: task-id order.
    std::vector<SimTaskId> runnable;
    for (SimTaskId i = 0; i < tasks_.size(); ++i) {
      Task& task = tasks_[i];
      if (task.state == TaskState::kBlocked) {
        const bool deadline_hit = task.deadline >= 0 && task.deadline <= now;
        if (deadline_hit || (task.pred && task.pred())) {
          task.state = TaskState::kRunnable;
          task.pred = nullptr;
          task.deadline = -1;
        }
      }
      if (task.state == TaskState::kRunnable) runnable.push_back(i);
    }

    // 3. Grant the CPU to one runnable task, chosen by the seeded PRNG.
    //    This is the only source of interleaving in a simulated run.
    if (!runnable.empty()) {
      const SimTaskId pick =
          runnable[static_cast<size_t>(rng_.NextBounded(runnable.size()))];
      ++steps_;
      tasks_[pick].state = TaskState::kRunning;
      running_ = pick;
      if (dbg) {
        std::fprintf(stderr, "[sim] step %llu: grant %s at t=%lld\n",
                     (unsigned long long)steps_, tasks_[pick].name.c_str(),
                     (long long)now);
      }
      cv_.notify_all();
      cv_.wait(lock, [&] { return running_ == kInvalidSimTask; });
      if (dbg) {
        std::fprintf(stderr, "[sim] step %llu: %s yielded control (state=%d)\n",
                     (unsigned long long)steps_, tasks_[pick].name.c_str(),
                     (int)tasks_[pick].state);
      }
      continue;
    }

    // 4. Nothing runnable and nothing due: quiesced, advance time, or
    //    deadlock.
    if (mode == RunMode::kUntilQuiescent) break;

    TimeNanos next = -1;
    if (!events_.empty()) next = events_.top().at;
    for (const Task& task : tasks_) {
      if (task.state == TaskState::kBlocked && task.deadline >= 0) {
        next = next < 0 ? task.deadline : std::min(next, task.deadline);
      }
    }
    const bool all_done =
        std::all_of(tasks_.begin(), tasks_.end(), [](const Task& t) {
          return t.state == TaskState::kDone;
        });
    if (next < 0) {
      if (all_done) break;
      result = Status::Internal(
          "sim deadlock: no runnable task, no pending event; blocked: " +
          BlockedTaskNamesLocked());
      break;
    }
    if (limit_nanos_ > 0 && next > limit_nanos_) {
      result = Status::Timeout(
          "sim virtual time limit exceeded (next wakeup at " +
          std::to_string(next) + " ns > limit " +
          std::to_string(limit_nanos_) + " ns); blocked: " +
          BlockedTaskNamesLocked());
      break;
    }
    if (dbg) {
      std::fprintf(stderr, "[sim] advance %lld -> %lld\n", (long long)now,
                   (long long)next);
    }
    clock_.AdvanceTo(next);
  }

  driving_ = false;
  return result;
}

}  // namespace deco
