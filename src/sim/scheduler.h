#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <queue>
#include <string>
#include <vector>

#include <condition_variable>

#include "common/clock.h"
#include "common/queue.h"
#include "common/random.h"
#include "common/status.h"

/// \file scheduler.h
/// \brief Deterministic discrete-event scheduler for simulated runs
/// (DESIGN.md §8).
///
/// In `--sim` mode the whole runtime — every actor thread, every fabric
/// delivery, every chaos action and telemetry tick — is driven by one
/// `SimScheduler` owning one `SimClock`. Actors stay ordinary OS threads,
/// but at most one is ever *runnable*: a thread only executes between the
/// scheduler granting it the (virtual) CPU and its next blocking call
/// (mailbox pop, sleep, yield), at which point control returns to the
/// scheduler's driver loop. All scheduling decisions — which runnable task
/// goes next, when virtual time advances — come from a single seeded PRNG
/// and a single event queue, so a run is a pure function of
/// `(config, seed)`: byte-identical reports, byte counters and message
/// orders on every replay, on any machine, under any sanitizer.
///
/// The driver loop (one of `RunUntilTaskDone` / `RunUntilQuiescent` /
/// `DrainAll`) repeats:
///   1. fire the earliest due timer event (ties broken by schedule order);
///   2. re-check every blocked task's wake predicate / deadline;
///   3. if any task is runnable, pick one with the seeded PRNG and hand it
///      the CPU until it blocks again;
///   4. otherwise advance the `SimClock` straight to the next event or
///      deadline — sleeps cost zero wall time;
///   5. if there is nothing to advance to and live tasks remain, report a
///      deadlock naming the blocked tasks.

namespace deco {

/// Index of a task registered with the scheduler.
using SimTaskId = size_t;

inline constexpr SimTaskId kInvalidSimTask = static_cast<SimTaskId>(-1);

class SimScheduler {
 public:
  /// \brief `seed` drives every pick among simultaneously runnable tasks;
  /// `start_nanos` is the initial virtual time.
  explicit SimScheduler(uint64_t seed, TimeNanos start_nanos = 0);

  /// \brief Requires every task to have finished (joined threads call
  /// `TaskMain` to completion before this is safe); asserts in debug if a
  /// task is still live.
  ~SimScheduler();

  SimClock* clock() { return &clock_; }
  TimeNanos Now() const { return clock_.NowNanos(); }

  // --- Driver-side API (call from the thread that owns the scheduler). ---

  /// \brief Registers a task slot. The task's thread must call
  /// `TaskMain(id, body)` as its thread function.
  SimTaskId AddTask(std::string name);

  /// \brief Runs the simulation until task `id` finishes. Fails with
  /// `Internal` on deadlock and `DeadlineExceeded` when the virtual-time
  /// limit is hit.
  Status RunUntilTaskDone(SimTaskId id);

  /// \brief Runs until no task is runnable and no timer event is due —
  /// i.e. nothing can make progress without more input or time.
  Status RunUntilQuiescent();

  /// \brief Runs until every registered task has finished. All remaining
  /// waits must be unblockable (closed queues, finite deadlines).
  Status DrainAll();

  /// \brief Aborts driver loops with `DeadlineExceeded` once virtual time
  /// would pass `limit_nanos` (0 = unlimited). Guards against virtual
  /// livelock: a buggy protocol that keeps re-arming timeouts forever.
  void SetVirtualTimeLimit(TimeNanos limit_nanos) {
    std::lock_guard<std::mutex> lock(mu_);
    limit_nanos_ = limit_nanos;
  }

  /// \brief Number of scheduling decisions taken so far (diagnostics).
  uint64_t steps() const {
    std::lock_guard<std::mutex> lock(mu_);
    return steps_;
  }

  // --- Any-thread API. ---

  /// \brief Schedules `fn` to run on the driver thread at virtual time
  /// `at_nanos` (clamped to now if in the past). Events at equal times fire
  /// in schedule order. This is how fabric deliveries, chaos actions and
  /// telemetry ticks enter the simulation.
  void ScheduleAt(TimeNanos at_nanos, std::function<void()> fn);

  // --- Task-side API (call only from a task thread, between grants). ---

  /// \brief Thread function wrapper: waits for the first CPU grant, runs
  /// `body`, then marks the task done. Installs the thread-local scheduler
  /// pointer for the duration so `Current()` works inside `body`.
  void TaskMain(SimTaskId id, const std::function<void()>& body);

  /// \brief Blocks the calling task until `pred()` holds or virtual time
  /// reaches `deadline_nanos` (< 0 = no deadline). `pred` is evaluated by
  /// the driver with the scheduler lock held: it must be cheap and must not
  /// call back into the scheduler.
  void WaitUntil(std::function<bool()> pred, TimeNanos deadline_nanos);

  /// \brief Blocks the calling task for `delta_nanos` of virtual time.
  void SleepFor(TimeNanos delta_nanos);

  /// \brief Gives the scheduler a chance to run other tasks / fire events.
  void Yield();

  /// \brief Deterministic replacement for `BlockingQueue::Pop` /
  /// `PopWithTimeout`: pops the next item, blocking in virtual time until
  /// one arrives, the queue closes, or `deadline_nanos` (< 0 = none)
  /// passes.
  template <typename T>
  std::optional<T> Pop(BlockingQueue<T>* queue, TimeNanos deadline_nanos) {
    while (true) {
      if (std::optional<T> item = queue->TryPop()) return item;
      if (queue->closed()) return std::nullopt;
      if (deadline_nanos >= 0 && Now() >= deadline_nanos) {
        return std::nullopt;
      }
      WaitUntil([queue] { return !queue->empty() || queue->closed(); },
                deadline_nanos);
    }
  }

  /// \brief Scheduler driving the calling thread's current task, or the one
  /// whose driver loop is executing the current timer event; null on
  /// ordinary threads.
  static SimScheduler* Current();

  /// \brief True only on a thread currently running as a granted sim task —
  /// i.e. it may call the blocking task-side API.
  static bool OnSimTask();

 private:
  enum class TaskState : uint8_t {
    kNotStarted,  // AddTask'd; thread has not reached TaskMain yet
    kRunnable,    // ready for a CPU grant
    kRunning,     // holds the (virtual) CPU
    kBlocked,     // waiting on pred / deadline
    kDone,        // body returned
  };

  struct Task {
    std::string name;
    TaskState state = TaskState::kNotStarted;
    std::function<bool()> pred;   // valid iff kBlocked
    TimeNanos deadline = -1;      // valid iff kBlocked; < 0 = none
  };

  struct TimerEvent {
    TimeNanos at;
    uint64_t seq;  // tie-break: schedule order
    std::function<void()> fn;
  };
  struct TimerEventLater {
    bool operator()(const TimerEvent& a, const TimerEvent& b) const {
      return a.at != b.at ? a.at > b.at : a.seq > b.seq;
    }
  };

  enum class RunMode { kUntilTaskDone, kUntilQuiescent, kDrainAll };

  Status Run(RunMode mode, SimTaskId target);
  std::string BlockedTaskNamesLocked() const;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  SimClock clock_;
  Rng rng_;
  // Deque, not vector: task threads park on `cv_` with a captured
  // `Task&` while later `AddTask` calls still append (StartAll registers
  // actors concurrently with earlier actors checking in). References into
  // a deque survive push_back; vector reallocation would dangle them.
  std::deque<Task> tasks_;
  std::priority_queue<TimerEvent, std::vector<TimerEvent>, TimerEventLater>
      events_;
  uint64_t next_event_seq_ = 0;
  SimTaskId running_ = kInvalidSimTask;
  TimeNanos limit_nanos_ = 0;
  uint64_t steps_ = 0;
  bool driving_ = false;  // a driver loop is active (sanity checks)
};

}  // namespace deco
