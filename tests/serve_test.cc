#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "harness/experiment.h"
#include "harness/oracle.h"
#include "metrics/report.h"
#include "serve/composer.h"
#include "serve/registry.h"
#include "serve/slice_store.h"

namespace deco {
namespace {

// Multi-query serving layer (DESIGN.md §11): registry/admission units,
// slot schedule mechanics, and end-to-end sim runs checked per query
// against the pane-composition oracle.

double RelTolerance(double truth) {
  return 1e-6 * std::max(1.0, std::fabs(truth));
}

ServedQuery MakeQuery(AggregateKind agg, uint64_t window,
                      const std::string& tenant = "default") {
  ServedQuery q;
  q.tenant = tenant;
  q.query.aggregate = agg;
  q.query.window = WindowSpec::CountTumbling(window);
  return q;
}

TEST(QueryRegistryTest, AssignsIdsAndSharesSlots) {
  QueryRegistry registry;
  ASSERT_TRUE(registry.Add(MakeQuery(AggregateKind::kSum, 1000)).ok());
  ASSERT_TRUE(registry.Add(MakeQuery(AggregateKind::kMax, 500, "b")).ok());
  ASSERT_TRUE(registry.Add(MakeQuery(AggregateKind::kSum, 2000, "b")).ok());

  ASSERT_EQ(registry.queries().size(), 3u);
  EXPECT_EQ(registry.queries()[0].id, 0u);
  EXPECT_EQ(registry.queries()[1].id, 1u);
  EXPECT_EQ(registry.queries()[2].id, 2u);
  // Queries 0 and 2 both compute sum: one shared slot.
  EXPECT_EQ(registry.slots().size(), 2u);
  EXPECT_EQ(registry.queries()[0].slot, 0u);
  EXPECT_EQ(registry.queries()[1].slot, 1u);
  EXPECT_EQ(registry.queries()[2].slot, 0u);
  EXPECT_EQ(registry.PaneLength(), 500u);
  ASSERT_EQ(registry.tenants().size(), 2u);
  EXPECT_EQ(registry.tenants()[0], "default");
  EXPECT_EQ(registry.tenants()[1], "b");
}

TEST(QueryRegistryTest, PrimaryMustCoverWholeRun) {
  QueryRegistry registry;
  ServedQuery scheduled = MakeQuery(AggregateKind::kSum, 1000);
  scheduled.add_pane = 4;
  EXPECT_TRUE(registry.Add(scheduled).IsInvalidArgument());
}

TEST(QueryRegistryTest, AdmissionRejectsOverMaxQueries) {
  ServeAdmission admission;
  admission.max_queries = 2;
  QueryRegistry registry(admission);
  ASSERT_TRUE(registry.Add(MakeQuery(AggregateKind::kSum, 1000)).ok());
  ASSERT_TRUE(registry.Add(MakeQuery(AggregateKind::kMax, 1000)).ok());
  const Status rejected =
      registry.Add(MakeQuery(AggregateKind::kMin, 1000));
  EXPECT_TRUE(rejected.IsResourceExhausted());
  // Loud rejection: the message names the limit and the remedy.
  EXPECT_NE(rejected.ToString().find("max_queries"), std::string::npos);
  EXPECT_EQ(registry.queries().size(), 2u);
}

TEST(QueryRegistryTest, AdmissionRejectsOverByteBudgetAndRollsBack) {
  ServeAdmission admission;
  admission.max_extra_bytes_per_event = 1e-9;
  admission.num_locals = 4;
  QueryRegistry registry(admission);
  ASSERT_TRUE(registry.Add(MakeQuery(AggregateKind::kSum, 1000)).ok());
  const Status rejected =
      registry.Add(MakeQuery(AggregateKind::kMax, 1000, "b"));
  EXPECT_TRUE(rejected.IsResourceExhausted());
  EXPECT_NE(rejected.ToString().find("bytes/event"), std::string::npos);
  // Rollback leaves no trace of the rejected query.
  EXPECT_EQ(registry.queries().size(), 1u);
  EXPECT_EQ(registry.slots().size(), 1u);
  EXPECT_EQ(registry.tenants().size(), 1u);
  // A same-slot query costs no extra wire bytes, so it still fits.
  EXPECT_TRUE(registry.Add(MakeQuery(AggregateKind::kSum, 500, "b")).ok());
}

TEST(QueryRegistryTest, ValidationRejectsBadQuantile) {
  QueryRegistry registry;
  ServedQuery q = MakeQuery(AggregateKind::kQuantile, 1000);
  q.query.quantile_q = 1.5;
  EXPECT_FALSE(registry.Add(q).ok());
  q.query.quantile_q = 0.0;
  EXPECT_FALSE(registry.Add(q).ok());
  q.query.quantile_q = 0.9;
  EXPECT_TRUE(registry.Add(q).ok());
}

TEST(QuerySpecTest, ParsesPositionalAndKeyValue) {
  auto positional = ParseQuerySpec("max:100000");
  ASSERT_TRUE(positional.ok());
  EXPECT_EQ(positional->query.aggregate, AggregateKind::kMax);
  EXPECT_EQ(positional->query.window.length, 100000u);
  EXPECT_EQ(positional->query.window.type, WindowType::kTumbling);
  EXPECT_EQ(positional->tenant, "default");

  auto sliding = ParseQuerySpec("avg:1000:250");
  ASSERT_TRUE(sliding.ok());
  EXPECT_EQ(sliding->query.window.type, WindowType::kSliding);
  EXPECT_EQ(sliding->query.window.slide, 250u);

  auto keyed = ParseQuerySpec(
      "tenant=acme,agg=sum,window=5000,add=4,rm=12");
  ASSERT_TRUE(keyed.ok());
  EXPECT_EQ(keyed->tenant, "acme");
  EXPECT_EQ(keyed->add_pane, 4u);
  EXPECT_EQ(keyed->remove_pane, 12u);

  EXPECT_FALSE(ParseQuerySpec("").ok());
  EXPECT_FALSE(ParseQuerySpec("sum").ok());
  EXPECT_FALSE(ParseQuerySpec("frobnicate:1000").ok());
  EXPECT_FALSE(ParseQuerySpec("tenant=acme,agg=sum").ok());  // no window
  EXPECT_FALSE(ParseQuerySpec("agg=quantile,window=1000,q=2.0").ok());

  auto list = ParseQueryList("sum:1000;max:500");
  ASSERT_TRUE(list.ok());
  EXPECT_EQ(list->size(), 2u);
  EXPECT_FALSE(ParseQueryList(";;").ok());
}

TEST(QuerySpecTest, CanonicalSpecRoundTrips) {
  auto parsed = ParseQuerySpec("tenant=t1,agg=avg,window=800,slide=200");
  ASSERT_TRUE(parsed.ok());
  QueryRegistry registry;
  ASSERT_TRUE(registry.Add(MakeQuery(AggregateKind::kSum, 800)).ok());
  ASSERT_TRUE(registry.Add(*parsed).ok());
  const std::string canonical = registry.queries()[1].spec;
  auto reparsed = ParseQuerySpec(canonical);
  ASSERT_TRUE(reparsed.ok()) << canonical;
  EXPECT_EQ(reparsed->tenant, parsed->tenant);
  EXPECT_EQ(reparsed->query.window.length, parsed->query.window.length);
  EXPECT_EQ(reparsed->query.window.slide, parsed->query.window.slide);
  EXPECT_EQ(reparsed->query.aggregate, parsed->query.aggregate);
}

TEST(SlotScheduleTest, ActivateRetireAndReopen) {
  SlotSchedule schedule;
  schedule.Reset(3);
  // Slot 0 is always active.
  EXPECT_TRUE(schedule.ActiveAt(0, 0));
  EXPECT_TRUE(schedule.ActiveAt(0, 1'000'000));
  // Other slots start inactive.
  EXPECT_FALSE(schedule.ActiveAt(1, 0));

  schedule.Activate(1, 5);
  EXPECT_FALSE(schedule.ActiveAt(1, 4));
  EXPECT_TRUE(schedule.ActiveAt(1, 5));
  schedule.Retire(1, 9);
  EXPECT_TRUE(schedule.ActiveAt(1, 8));
  EXPECT_FALSE(schedule.ActiveAt(1, 9));
  // A later add re-opens a second interval on the same slot.
  schedule.Activate(1, 20);
  EXPECT_FALSE(schedule.ActiveAt(1, 19));
  EXPECT_TRUE(schedule.ActiveAt(1, 20));
  EXPECT_TRUE(schedule.ActiveAt(1, 8));  // history is preserved
}

TEST(SlotScheduleTest, SnapshotCodecRoundTrips) {
  SlotSchedule schedule;
  schedule.Reset(4);
  schedule.Activate(1, 3);
  schedule.Retire(1, 7);
  schedule.Activate(2, 10);
  ServeSnapshot snapshot;
  snapshot.pane_length = 2500;
  snapshot.schedule.CopyFrom(schedule);

  BinaryWriter writer;
  EncodeServeSnapshot(snapshot, &writer);
  BinaryReader reader(writer.buffer());
  auto decoded = DecodeServeSnapshot(&reader);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->pane_length, 2500u);
  ASSERT_EQ(decoded->schedule.num_slots(), 4u);
  for (uint64_t pane : {0, 2, 3, 6, 7, 9, 10, 11}) {
    for (uint16_t slot = 0; slot < 4; ++slot) {
      EXPECT_EQ(decoded->schedule.ActiveAt(slot, pane),
                schedule.ActiveAt(slot, pane))
          << "slot " << slot << " pane " << pane;
    }
  }
}

// --- End-to-end sim runs -------------------------------------------------

ExperimentConfig BaseConfig(Scheme scheme) {
  ExperimentConfig config;
  config.scheme = scheme;
  config.sim = true;
  config.num_locals = 3;
  config.streams_per_local = 2;
  config.events_per_local = 60'000;
  config.base_rate = 100'000.0;
  config.rate_change = 0.05;
  config.batch_size = 512;
  config.seed = 99;
  config.sim_time_limit_nanos = 120 * kNanosPerSecond;
  return config;
}

void CheckQueryAgainstOracle(const ExperimentConfig& config,
                             const RunReport& report,
                             const QueryRunResult& qr,
                             const QueryConfig& query) {
  SCOPED_TRACE("query " + std::to_string(qr.query_id) + " [" + qr.spec +
               "]");
  auto oracle = ComputeQueryOracle(config, query,
                                   report.serving.pane_length,
                                   qr.start_pane, qr.end_pane);
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
  ASSERT_EQ(qr.windows.size(), oracle->size());
  for (size_t i = 0; i < qr.windows.size(); ++i) {
    EXPECT_EQ(qr.windows[i].event_count, (*oracle)[i].event_count)
        << "window " << i;
    EXPECT_EQ(qr.windows[i].end_ts, (*oracle)[i].end_ts) << "window " << i;
    EXPECT_NEAR(qr.windows[i].value, (*oracle)[i].value,
                RelTolerance((*oracle)[i].value))
        << "window " << i;
  }
}

TEST(ServeIntegrationTest, MultiQueryMatchesPerQueryOracle) {
  for (Scheme scheme :
       {Scheme::kDecoMon, Scheme::kDecoSync, Scheme::kDecoAsync}) {
    SCOPED_TRACE(SchemeToString(scheme));
    ExperimentConfig config = BaseConfig(scheme);
    config.serve.queries.push_back(MakeQuery(AggregateKind::kSum, 20'000));
    config.serve.queries.push_back(
        MakeQuery(AggregateKind::kMax, 10'000, "b"));
    config.serve.queries.push_back(
        MakeQuery(AggregateKind::kAvg, 20'000, "b"));

    auto result = RunExperiment(config);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    const RunReport& report = *result;
    EXPECT_TRUE(report.serving.enabled);
    EXPECT_EQ(report.serving.pane_length, 10'000u);
    EXPECT_EQ(report.serving.queries, 3u);
    EXPECT_EQ(report.serving.slots, 3u);
    ASSERT_EQ(report.query_results.size(), 3u);

    // The primary's windows also populate the legacy report surface.
    ASSERT_EQ(report.windows.size(), report.query_results[0].windows.size());
    for (size_t i = 0; i < report.windows.size(); ++i) {
      EXPECT_EQ(report.windows[i].value,
                report.query_results[0].windows[i].value);
    }
    for (size_t qi = 0; qi < 3; ++qi) {
      CheckQueryAgainstOracle(config, report, report.query_results[qi],
                              config.serve.queries[qi].query);
    }

    // Per-tenant accounting: tenant "b" owns two of the three slots, so it
    // must carry more aggregate work than "default".
    ASSERT_EQ(report.serving.tenants.size(), 2u);
    EXPECT_EQ(report.serving.tenants[0].tenant, "default");
    EXPECT_EQ(report.serving.tenants[1].tenant, "b");
    EXPECT_GT(report.serving.tenants[0].agg_ops, 0u);
    EXPECT_GT(report.serving.tenants[1].agg_ops,
              report.serving.tenants[0].agg_ops);
    EXPECT_GT(report.serving.tenants[1].bytes,
              report.serving.tenants[0].bytes);
  }
}

TEST(ServeIntegrationTest, SlidingCoQueryMatchesOracle) {
  ExperimentConfig config = BaseConfig(Scheme::kDecoSync);
  config.serve.queries.push_back(MakeQuery(AggregateKind::kSum, 20'000));
  ServedQuery sliding = MakeQuery(AggregateKind::kSum, 20'000, "b");
  sliding.query.window = WindowSpec::CountSliding(20'000, 10'000);
  config.serve.queries.push_back(sliding);

  auto result = RunExperiment(config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->query_results.size(), 2u);
  EXPECT_EQ(result->serving.pane_length, 10'000u);
  for (size_t qi = 0; qi < 2; ++qi) {
    CheckQueryAgainstOracle(config, *result, result->query_results[qi],
                            config.serve.queries[qi].query);
  }
  // The sliding co-query emits ~2x the tumbling primary's windows.
  EXPECT_GT(result->query_results[1].windows.size(),
            result->query_results[0].windows.size());
}

TEST(ServeIntegrationTest, RuntimeAddRemoveConvergesToOracle) {
  for (Scheme scheme :
       {Scheme::kDecoMon, Scheme::kDecoSync, Scheme::kDecoAsync}) {
    SCOPED_TRACE(SchemeToString(scheme));
    ExperimentConfig config = BaseConfig(scheme);
    config.events_per_local = 200'000;  // ~30 panes of 20k at 3 locals
    config.serve.queries.push_back(MakeQuery(AggregateKind::kSum, 20'000));
    ServedQuery scheduled = MakeQuery(AggregateKind::kMax, 20'000, "b");
    scheduled.add_pane = 3;
    scheduled.remove_pane = 12;
    config.serve.queries.push_back(scheduled);

    auto result = RunExperiment(config);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_EQ(result->query_results.size(), 2u);
    const QueryRunResult& qr = result->query_results[1];
    // The root activates at or after the requested pane (its effective
    // pane must clear every local's planning horizon) and records the
    // panes it actually used.
    EXPECT_TRUE(qr.activated);
    EXPECT_GE(qr.start_pane, 3u);
    EXPECT_GE(qr.end_pane, 12u);
    EXPECT_NE(qr.end_pane, kServePaneNever);
    EXPECT_GT(qr.windows.size(), 0u);
    CheckQueryAgainstOracle(config, *result, qr, scheduled.query);
    CheckQueryAgainstOracle(config, *result, result->query_results[0],
                            config.serve.queries[0].query);
  }
}

TEST(ServeIntegrationTest, SixtyFourQueriesAreDeterministic) {
  static const AggregateKind kAggs[] = {
      AggregateKind::kSum, AggregateKind::kCount, AggregateKind::kMin,
      AggregateKind::kMax, AggregateKind::kAvg};
  auto make_config = [&] {
    ExperimentConfig config = BaseConfig(Scheme::kDecoAsync);
    config.num_locals = 2;
    config.events_per_local = 50'000;  // 10 panes of 10k
    for (size_t i = 0; i < 64; ++i) {
      config.serve.queries.push_back(
          MakeQuery(kAggs[i % 5], 10'000, "t" + std::to_string(i % 4)));
    }
    return config;
  };

  const ExperimentConfig config = make_config();
  auto first = RunExperiment(config);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto second = RunExperiment(make_config());
  ASSERT_TRUE(second.ok()) << second.status().ToString();

  EXPECT_EQ(first->serving.queries, 64u);
  EXPECT_EQ(first->serving.slots, 5u);
  ASSERT_EQ(first->query_results.size(), 64u);
  for (const QueryRunResult& qr : first->query_results) {
    EXPECT_GT(qr.windows.size(), 0u) << "query " << qr.query_id;
  }
  // Byte-identical replay from (config, seed): report JSON and the
  // fabric's delivery-order witness both match.
  EXPECT_EQ(first->delivery_hash, second->delivery_hash);
  EXPECT_EQ(RunReportJson(*first), RunReportJson(*second));

  // Queries sharing (aggregate, window) must agree window-for-window —
  // one slot computed once, fanned out to every subscriber.
  const QueryRunResult& a = first->query_results[0];
  const QueryRunResult& b = first->query_results[5];  // same agg cycle slot
  ASSERT_EQ(a.windows.size(), b.windows.size());
  for (size_t i = 0; i < a.windows.size(); ++i) {
    EXPECT_EQ(a.windows[i].value, b.windows[i].value);
  }
}

TEST(ServeIntegrationTest, HarnessAdmissionRejectsLoudly) {
  ExperimentConfig config = BaseConfig(Scheme::kDecoSync);
  config.serve.admission.max_queries = 2;
  config.serve.queries.push_back(MakeQuery(AggregateKind::kSum, 20'000));
  config.serve.queries.push_back(MakeQuery(AggregateKind::kMax, 20'000));
  config.serve.queries.push_back(MakeQuery(AggregateKind::kMin, 20'000));
  EXPECT_TRUE(RunExperiment(config).status().IsResourceExhausted());

  config.serve.queries.pop_back();
  config.serve.admission.max_extra_bytes_per_event = 1e-9;
  EXPECT_TRUE(RunExperiment(config).status().IsResourceExhausted());
}

TEST(ServeIntegrationTest, RuntimeScheduleRequiresRootCoordinatedDeco) {
  ExperimentConfig config = BaseConfig(Scheme::kCentral);
  config.serve.queries.push_back(MakeQuery(AggregateKind::kSum, 20'000));
  ServedQuery scheduled = MakeQuery(AggregateKind::kMax, 20'000);
  scheduled.add_pane = 3;
  config.serve.queries.push_back(scheduled);
  EXPECT_TRUE(RunExperiment(config).status().IsNotSupported());
  config.scheme = Scheme::kDecoMonLocal;
  EXPECT_TRUE(RunExperiment(config).status().IsNotSupported());
}

TEST(ServeIntegrationTest, BaselineFallbackMatchesOracle) {
  for (Scheme scheme : {Scheme::kCentral, Scheme::kScotty}) {
    SCOPED_TRACE(SchemeToString(scheme));
    ExperimentConfig config = BaseConfig(scheme);
    config.serve.queries.push_back(MakeQuery(AggregateKind::kSum, 20'000));
    config.serve.queries.push_back(
        MakeQuery(AggregateKind::kMax, 10'000, "b"));

    auto result = RunExperiment(config);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(result->serving.enabled);
    ASSERT_EQ(result->query_results.size(), 2u);
    // The fallback runs the full stream once per query; each sub-run's
    // windows must still match the per-query oracle (pane = the query's
    // own protocol window in a single-query sub-run, but the composed
    // oracle at the shared pane gives the same windows).
    for (size_t qi = 0; qi < 2; ++qi) {
      CheckQueryAgainstOracle(config, *result, result->query_results[qi],
                              config.serve.queries[qi].query);
    }
    // Summed cost: serving two queries by re-running the stream costs the
    // baseline roughly twice one run's bytes.
    ExperimentConfig single = config;
    single.serve.queries.clear();
    single.query = config.serve.queries[0].query;
    auto single_run = RunExperiment(single);
    ASSERT_TRUE(single_run.ok());
    EXPECT_GT(result->network.total_bytes,
              3 * single_run->network.total_bytes / 2);
  }
}

TEST(ServeIntegrationTest, MarginalCostOfCoQueriesIsSmall) {
  // The acceptance property behind bench/qps_marginal_cost: for a Deco
  // scheme, co-queries reuse the primary's stream pass and add only a
  // per-pane slot partial, so the marginal bytes/event of each co-query
  // must be well under 20% of the single-query cost.
  ExperimentConfig config = BaseConfig(Scheme::kDecoSync);
  config.query.window = WindowSpec::CountTumbling(10'000);
  auto single = RunExperiment(config);
  ASSERT_TRUE(single.ok()) << single.status().ToString();

  static const AggregateKind kAggs[] = {
      AggregateKind::kSum, AggregateKind::kCount, AggregateKind::kMin,
      AggregateKind::kMax, AggregateKind::kAvg};
  config.serve.queries.push_back(
      MakeQuery(AggregateKind::kSum, config.query.window.length));
  for (size_t i = 1; i < 16; ++i) {
    config.serve.queries.push_back(MakeQuery(
        kAggs[i % 5], config.query.window.length, "t" + std::to_string(i % 4)));
  }
  auto served = RunExperiment(config);
  ASSERT_TRUE(served.ok()) << served.status().ToString();
  ASSERT_EQ(served->query_results.size(), 16u);

  const double single_bpe = single->BytesPerEvent();
  const double marginal_bpe =
      (served->BytesPerEvent() - single_bpe) / 15.0;
  EXPECT_LT(marginal_bpe, 0.2 * single_bpe)
      << "single=" << single_bpe << " served=" << served->BytesPerEvent();
}

}  // namespace
}  // namespace deco
