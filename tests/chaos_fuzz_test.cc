#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/random.h"
#include "harness/experiment.h"
#include "metrics/report.h"
#include "obs/provenance.h"

namespace deco {
namespace {

// Seeded chaos fuzzing in simulation mode (ISSUE 4 satellite): random
// fault schedules — crash/restart pairs plus drop, lag and partition
// bursts — against the Deco schemes, asserting the recovery invariants the
// chaos benchmark (bench/chaos_recovery.py) measures:
//  - no deadlock: the simulated run terminates on its own (a sim deadlock
//    is a hard `Internal` error; a livelock trips the virtual-time limit);
//  - eventual rejoin: every crashed-and-restarted node re-enters the
//    membership;
//  - bounded post-recovery error: once the last fault has healed, the
//    surviving windows' values stay within 1% of a fault-free twin run,
//    compared on the event-time axis (window indices shift after a crash);
//  - consistent provenance (ISSUE 6 satellite): every window record
//    satisfies expected == received + missing with a state log ending in
//    `final`, corrected windows carry a correction trail, the
//    crashed-and-rejoined node reappears with a bumped incarnation, and
//    the accuracy components sum to the observed error per window.
//
// Runs are paced with a CPU throttle so virtual time advances through the
// stream and the fault offsets land mid-run. Environment knobs:
// DECO_CHAOS_FUZZ_SEED, DECO_CHAOS_FUZZ_ITERS.

uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoull(value, nullptr, 10);
}

ExperimentConfig BaseConfig(Scheme scheme, uint64_t seed) {
  ExperimentConfig config;
  config.sim = true;
  config.scheme = scheme;
  config.query.window = WindowSpec::CountTumbling(2000);
  config.num_locals = 3;
  config.streams_per_local = 2;
  // cpu = rate: the token bucket's one-second burst covers the first
  // 30k events, the remaining 60k are paced at 30k events/s — two virtual
  // seconds for faults to land in.
  config.events_per_local = 90'000;
  config.base_rate = 30'000;
  config.cpu_events_per_sec = 30'000;
  config.rate_change = 0.05;
  config.batch_size = 512;
  config.seed = seed;
  config.root_options.node_timeout_nanos = 120 * kNanosPerMilli;
  // Livelock guard: the paced stream spans ~3 virtual seconds; a run still
  // going at 60 virtual seconds is stuck re-arming timeouts.
  config.sim_time_limit_nanos = 60 * kNanosPerSecond;
  return config;
}

// A random fault schedule in the spec grammar. Always includes one
// crash/restart pair (the invariant under test); may add drop, lag or
// partition bursts that heal before `heal_by_ms`.
struct FuzzedSchedule {
  std::string spec;
  size_t crashed_node = 0;
  TimeNanos restart_nanos = 0;
};

FuzzedSchedule SampleSchedule(Rng* rng) {
  FuzzedSchedule fuzz;
  fuzz.crashed_node = static_cast<size_t>(rng->NextInt(0, 2));
  const int64_t crash_ms = rng->NextInt(200, 900);
  const int64_t restart_ms = crash_ms + rng->NextInt(150, 500);
  fuzz.restart_nanos = restart_ms * kNanosPerMilli;
  char buf[256];
  std::snprintf(buf, sizeof(buf), "crash:local-%zu@%lldms,restart:local-%zu@%lldms",
                fuzz.crashed_node, static_cast<long long>(crash_ms),
                fuzz.crashed_node, static_cast<long long>(restart_ms));
  fuzz.spec = buf;

  // Optional extra network mischief on *other* nodes, healed by 1500ms so
  // the post-recovery tail stays clean.
  if (rng->NextBool(0.5)) {
    const size_t victim = (fuzz.crashed_node + 1) % 3;
    const int64_t at_ms = rng->NextInt(200, 1000);
    const int64_t dur_ms = rng->NextInt(100, 400);
    switch (rng->NextInt(0, 2)) {
      case 0:
        std::snprintf(buf, sizeof(buf), ",drop:local-%zu@%lldms+%lldms=0.3",
                      victim, static_cast<long long>(at_ms),
                      static_cast<long long>(dur_ms));
        break;
      case 1:
        std::snprintf(buf, sizeof(buf), ",lag:local-%zu@%lldms+%lldms=5ms",
                      victim, static_cast<long long>(at_ms),
                      static_cast<long long>(dur_ms));
        break;
      default:
        std::snprintf(buf, sizeof(buf), ",part:local-%zu@%lldms+%lldms",
                      victim, static_cast<long long>(at_ms),
                      static_cast<long long>(dur_ms));
        break;
    }
    fuzz.spec += buf;
  }
  return fuzz;
}

TEST(ChaosFuzzTest, RandomFaultSchedulesRecoverOnDecoSchemes) {
  const uint64_t master_seed = EnvU64("DECO_CHAOS_FUZZ_SEED", 42);
  const uint64_t iterations = EnvU64("DECO_CHAOS_FUZZ_ITERS", 8);
  std::printf("chaos fuzz: master seed %llu, %llu iterations\n",
              static_cast<unsigned long long>(master_seed),
              static_cast<unsigned long long>(iterations));
  static const Scheme kSchemes[] = {Scheme::kDecoMon, Scheme::kDecoSync,
                                    Scheme::kDecoAsync};
  Rng rng(master_seed);
  for (uint64_t i = 0; i < iterations; ++i) {
    const Scheme scheme = kSchemes[rng.NextBounded(3)];
    const uint64_t run_seed = rng.NextUint64() >> 1;
    const FuzzedSchedule fuzz = SampleSchedule(&rng);
    const std::string repro =
        std::string("deco_run --sim --scheme=") + SchemeToString(scheme) +
        " --seed=" + std::to_string(run_seed) +
        " --events=90000 --window=2000 --locals=3 --streams=2 "
        "--rate=30000 --cpu=30000 --change=0.05 --batch=512 --timeout=120 "
        "--chaos=\"" +
        fuzz.spec + "\"";
    SCOPED_TRACE("repro: " + repro);

    // Fault-free twin first: the truth trajectory for the error bound.
    ExperimentConfig config = BaseConfig(scheme, run_seed);
    auto twin = RunExperiment(config);
    ASSERT_TRUE(twin.ok()) << twin.status().ToString();

    auto schedule = ChaosSchedule::Parse(fuzz.spec);
    ASSERT_TRUE(schedule.ok()) << schedule.status().ToString();
    config.chaos.schedule = *schedule;
    ProvenanceLog provenance;
    config.provenance.enabled = true;
    config.provenance.sink = &provenance;
    auto chaotic = RunExperiment(config);
    // Termination *is* the no-deadlock assertion: a wedged protocol comes
    // back as `Internal` (sim deadlock) or `Timeout` (virtual-time limit).
    ASSERT_TRUE(chaotic.ok()) << chaotic.status().ToString();

    // Eventual rejoin: if the root ever removed the crashed node, it must
    // also have re-admitted it.
    bool removed = false;
    bool rejoined = false;
    for (const MembershipEvent& event : chaotic->membership) {
      if (event.node != fuzz.crashed_node) continue;
      removed |= !event.rejoined;
      rejoined |= event.rejoined;
    }
    EXPECT_TRUE(!removed || rejoined)
        << "node " << fuzz.crashed_node << " was removed but never rejoined";

    // Provenance bookkeeping contract: totals and per-node parts balance
    // on every record, the state log ends in `final`, and a window marked
    // corrected carries its correction trail.
    ASSERT_FALSE(provenance.windows.empty());
    uint64_t corrected_records = 0;
    uint64_t max_incarnation_seen = 0;
    for (const WindowProvenance& w : provenance.windows) {
      EXPECT_EQ(w.expected_total, w.received_total + w.missing_total)
          << "window " << w.window_index;
      for (const PartialProvenance& p : w.parts) {
        EXPECT_EQ(p.expected, p.received + p.missing)
            << "window " << w.window_index << " node " << p.node;
        if (p.node == fuzz.crashed_node) {
          max_incarnation_seen = std::max(max_incarnation_seen,
                                          p.incarnation);
        }
      }
      ASSERT_FALSE(w.transitions.empty());
      EXPECT_EQ(w.transitions.back().state, ProvState::kFinal);
      if (w.corrected) {
        ++corrected_records;
        bool saw_correction_trail = false;
        for (const ProvTransition& t : w.transitions) {
          saw_correction_trail |= t.state == ProvState::kCorrecting ||
                                  t.state == ProvState::kCorrected;
        }
        EXPECT_TRUE(saw_correction_trail) << "window " << w.window_index;
      }
    }
    if (chaotic->correction_steps > 0) {
      EXPECT_GT(corrected_records, 0u)
          << "the root corrected but no window record is marked corrected";
    }
    if (removed && rejoined) {
      EXPECT_GE(max_incarnation_seen, 1u)
          << "rejoined node " << fuzz.crashed_node
          << " never reappeared with a bumped incarnation";
    }
    // Accuracy attribution: in sim mode every window is estimated, and
    // drop + staleness + approx must sum to the observed error.
    EXPECT_EQ(provenance.accuracy.size(), chaotic->windows_emitted);
    for (const WindowAccuracy& acc : provenance.accuracy) {
      const double parts =
          acc.drop_error + acc.staleness_error + acc.approx_error;
      EXPECT_NEAR(acc.observed_error, parts,
                  std::max(0.01 * std::abs(acc.observed_error), 1e-6))
          << "window " << acc.window_index;
    }

    // Post-recovery accuracy: the last 20% of windows end well after the
    // restart (paced stream spans ~3 virtual seconds; faults heal by
    // ~1.5s), and must track the fault-free trajectory within 1%.
    ASSERT_GT(chaotic->windows_emitted, 10u);
    const TailError tail = TimeAlignedTailError(*twin, *chaotic, 0.2);
    ASSERT_GT(tail.compared, 0u);
    EXPECT_LT(tail.relative, 0.01)
        << "post-recovery tail error " << tail.relative * 100.0 << "%";
  }
}

}  // namespace
}  // namespace deco
