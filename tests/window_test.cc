#include <gtest/gtest.h>

#include <numeric>

#include "agg/aggregate.h"
#include "window/window.h"

namespace deco {
namespace {

Event MakeEvent(EventId id, double value, EventTime ts,
                StreamId stream = 0) {
  Event e;
  e.id = id;
  e.stream_id = stream;
  e.value = value;
  e.timestamp = ts;
  return e;
}

class WindowTestBase : public ::testing::Test {
 protected:
  void SetUp() override {
    func_ = std::move(MakeAggregate(AggregateKind::kSum)).value();
  }

  std::unique_ptr<Windower> MakeOk(const WindowSpec& spec) {
    auto result = MakeWindower(spec, func_.get());
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return std::move(result).value();
  }

  std::unique_ptr<AggregateFunction> func_;
};

// ------------------------------------------------------------ Validation

TEST(WindowSpecTest, ValidationRules) {
  EXPECT_TRUE(WindowSpec::CountTumbling(10).Validate().ok());
  EXPECT_FALSE(WindowSpec::CountTumbling(0).Validate().ok());
  EXPECT_TRUE(WindowSpec::CountSliding(10, 5).Validate().ok());
  EXPECT_FALSE(WindowSpec::CountSliding(10, 0).Validate().ok());
  EXPECT_FALSE(WindowSpec::CountSliding(10, 11).Validate().ok());
  EXPECT_TRUE(WindowSpec::Session(100).Validate().ok());
  EXPECT_FALSE(WindowSpec::Session(0).Validate().ok());
}

TEST(WindowSpecTest, ToStringDescribes) {
  EXPECT_NE(WindowSpec::CountTumbling(5).ToString().find("tumbling/count"),
            std::string::npos);
  EXPECT_NE(WindowSpec::TimeSliding(100, 50).ToString().find("sliding/time"),
            std::string::npos);
}

TEST(WindowSpecTest, FactoryRejectsNullAggregate) {
  EXPECT_FALSE(MakeWindower(WindowSpec::CountTumbling(5), nullptr).ok());
}

// -------------------------------------------------------- Count tumbling

using CountTumblingTest = WindowTestBase;

TEST_F(CountTumblingTest, EmitsEveryLEvents) {
  auto w = MakeOk(WindowSpec::CountTumbling(3));
  std::vector<WindowResult> out;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(w->Add(MakeEvent(i, 1.0, 100 + i), &out).ok());
  }
  ASSERT_EQ(out.size(), 3u);  // 10 events -> 3 complete windows of 3
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].window_index, i);
    EXPECT_EQ(out[i].event_count, 3u);
    EXPECT_DOUBLE_EQ(out[i].value, 3.0);
  }
  EXPECT_EQ(out[0].start_time, 100);
  EXPECT_EQ(out[0].end_time, 102);
  EXPECT_EQ(out[1].start_time, 103);
}

TEST_F(CountTumblingTest, IncompleteWindowIsNotEmitted) {
  auto w = MakeOk(WindowSpec::CountTumbling(5));
  std::vector<WindowResult> out;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(w->Add(MakeEvent(i, 1.0, i), &out).ok());
  }
  ASSERT_TRUE(w->Flush(&out).ok());
  EXPECT_TRUE(out.empty());
}

TEST_F(CountTumblingTest, WatermarksAreIgnored) {
  auto w = MakeOk(WindowSpec::CountTumbling(2));
  std::vector<WindowResult> out;
  ASSERT_TRUE(w->Add(MakeEvent(0, 1.0, 5), &out).ok());
  ASSERT_TRUE(w->OnWatermark(Watermark{1'000'000}, &out).ok());
  EXPECT_TRUE(out.empty());
}

// --------------------------------------------------------- Count sliding

using CountSlidingTest = WindowTestBase;

TEST_F(CountSlidingTest, OverlappingWindowsShareEvents) {
  auto w = MakeOk(WindowSpec::CountSliding(4, 2));
  std::vector<WindowResult> out;
  for (int i = 1; i <= 8; ++i) {
    ASSERT_TRUE(w->Add(MakeEvent(i, i, 10 * i), &out).ok());
  }
  // Windows over values: [1..4], [3..6], [5..8]
  ASSERT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(out[0].value, 1 + 2 + 3 + 4);
  EXPECT_DOUBLE_EQ(out[1].value, 3 + 4 + 5 + 6);
  EXPECT_DOUBLE_EQ(out[2].value, 5 + 6 + 7 + 8);
  EXPECT_EQ(out[1].start_time, 30);
  EXPECT_EQ(out[1].end_time, 60);
}

TEST_F(CountSlidingTest, SlideEqualLengthBehavesLikeTumbling) {
  auto sliding = MakeOk(WindowSpec::CountSliding(3, 3));
  auto tumbling = MakeOk(WindowSpec::CountTumbling(3));
  std::vector<WindowResult> out_s, out_t;
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(sliding->Add(MakeEvent(i, i * 0.5, i), &out_s).ok());
    ASSERT_TRUE(tumbling->Add(MakeEvent(i, i * 0.5, i), &out_t).ok());
  }
  ASSERT_EQ(out_s.size(), out_t.size());
  for (size_t i = 0; i < out_s.size(); ++i) {
    EXPECT_DOUBLE_EQ(out_s[i].value, out_t[i].value);
  }
}

// Property: for any (L, S), every emitted window covers exactly L events
// and consecutive windows start S events apart. Verified against a naive
// reference computation.
class CountSlidingProperty
    : public ::testing::TestWithParam<std::pair<uint64_t, uint64_t>> {};

TEST_P(CountSlidingProperty, MatchesNaiveReference) {
  const auto [length, slide] = GetParam();
  auto func = std::move(MakeAggregate(AggregateKind::kSum)).value();
  auto w = std::move(
      MakeWindower(WindowSpec::CountSliding(length, slide), func.get()))
               .value();
  constexpr int kEvents = 200;
  std::vector<double> values(kEvents);
  for (int i = 0; i < kEvents; ++i) values[i] = (i * 37 % 11) - 5.0;

  std::vector<WindowResult> out;
  for (int i = 0; i < kEvents; ++i) {
    ASSERT_TRUE(w->Add(MakeEvent(i, values[i], i), &out).ok());
  }
  // Naive reference: window k covers [k*slide, k*slide + length).
  size_t expected = 0;
  for (uint64_t start = 0; start + length <= kEvents; start += slide) {
    ASSERT_LT(expected, out.size());
    const double want = std::accumulate(values.begin() + start,
                                        values.begin() + start + length, 0.0);
    EXPECT_DOUBLE_EQ(out[expected].value, want)
        << "window starting at " << start;
    EXPECT_EQ(out[expected].event_count, length);
    ++expected;
  }
  EXPECT_EQ(out.size(), expected);
}

INSTANTIATE_TEST_SUITE_P(
    LengthSlideCombos, CountSlidingProperty,
    ::testing::Values(std::pair<uint64_t, uint64_t>{4, 1},
                      std::pair<uint64_t, uint64_t>{6, 2},
                      std::pair<uint64_t, uint64_t>{6, 4},
                      std::pair<uint64_t, uint64_t>{10, 3},
                      std::pair<uint64_t, uint64_t>{7, 7},
                      std::pair<uint64_t, uint64_t>{16, 8}));

// --------------------------------------------------------- Time tumbling

using TimeTumblingTest = WindowTestBase;

TEST_F(TimeTumblingTest, ClosesOnWatermark) {
  auto w = MakeOk(WindowSpec::TimeTumbling(100));
  std::vector<WindowResult> out;
  ASSERT_TRUE(w->Add(MakeEvent(0, 1.0, 10), &out).ok());
  ASSERT_TRUE(w->Add(MakeEvent(1, 2.0, 50), &out).ok());
  ASSERT_TRUE(w->Add(MakeEvent(2, 4.0, 120), &out).ok());
  EXPECT_TRUE(out.empty());  // nothing closes without a watermark
  ASSERT_TRUE(w->OnWatermark(Watermark{99}, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].value, 3.0);
  EXPECT_EQ(out[0].start_time, 0);
  EXPECT_EQ(out[0].end_time, 100);
  ASSERT_TRUE(w->OnWatermark(Watermark{250}, &out).ok());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[1].value, 4.0);
}

TEST_F(TimeTumblingTest, LateEventsAreDropped) {
  auto w = MakeOk(WindowSpec::TimeTumbling(100));
  std::vector<WindowResult> out;
  ASSERT_TRUE(w->Add(MakeEvent(0, 1.0, 150), &out).ok());
  ASSERT_TRUE(w->OnWatermark(Watermark{199}, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  // Event behind the watermark: its window already fired.
  ASSERT_TRUE(w->Add(MakeEvent(1, 5.0, 120), &out).ok());
  ASSERT_TRUE(w->OnWatermark(Watermark{1000}, &out).ok());
  EXPECT_EQ(out.size(), 1u);  // nothing new, late event was discarded
}

TEST_F(TimeTumblingTest, EmptyBucketsDoNotEmit) {
  auto w = MakeOk(WindowSpec::TimeTumbling(10));
  std::vector<WindowResult> out;
  ASSERT_TRUE(w->Add(MakeEvent(0, 1.0, 5), &out).ok());
  ASSERT_TRUE(w->Add(MakeEvent(1, 1.0, 95), &out).ok());
  ASSERT_TRUE(w->OnWatermark(Watermark{200}, &out).ok());
  EXPECT_EQ(out.size(), 2u);  // only non-empty buckets
}

// ---------------------------------------------------------- Time sliding

using TimeSlidingTest = WindowTestBase;

TEST_F(TimeSlidingTest, OverlapAndPaneSharing) {
  auto w = MakeOk(WindowSpec::TimeSliding(100, 50));
  std::vector<WindowResult> out;
  ASSERT_TRUE(w->Add(MakeEvent(0, 1.0, 10), &out).ok());
  ASSERT_TRUE(w->Add(MakeEvent(1, 2.0, 60), &out).ok());
  ASSERT_TRUE(w->Add(MakeEvent(2, 4.0, 110), &out).ok());
  ASSERT_TRUE(w->OnWatermark(Watermark{300}, &out).ok());
  // Windows: [0,100): 1+2; [50,150): 2+4; [100,200): 4.
  ASSERT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(out[0].value, 3.0);
  EXPECT_DOUBLE_EQ(out[1].value, 6.0);
  EXPECT_DOUBLE_EQ(out[2].value, 4.0);
}

TEST_F(TimeSlidingTest, FirstWindowCoversFirstEvent) {
  auto w = MakeOk(WindowSpec::TimeSliding(100, 50));
  std::vector<WindowResult> out;
  ASSERT_TRUE(w->Add(MakeEvent(0, 1.0, 500), &out).ok());
  ASSERT_TRUE(w->OnWatermark(Watermark{700}, &out).ok());
  ASSERT_FALSE(out.empty());
  // Earliest window containing ts=500 starts at 450.
  EXPECT_EQ(out[0].start_time, 450);
}

// --------------------------------------------------------------- Session

using SessionTest = WindowTestBase;

TEST_F(SessionTest, GapClosesSession) {
  auto w = MakeOk(WindowSpec::Session(10));
  std::vector<WindowResult> out;
  ASSERT_TRUE(w->Add(MakeEvent(0, 1.0, 0), &out).ok());
  ASSERT_TRUE(w->Add(MakeEvent(1, 2.0, 5), &out).ok());
  ASSERT_TRUE(w->Add(MakeEvent(2, 4.0, 30), &out).ok());  // gap of 25 > 10
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].value, 3.0);
  EXPECT_EQ(out[0].start_time, 0);
  EXPECT_EQ(out[0].end_time, 5);
  ASSERT_TRUE(w->Flush(&out).ok());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[1].value, 4.0);
}

TEST_F(SessionTest, WatermarkClosesIdleSession) {
  auto w = MakeOk(WindowSpec::Session(10));
  std::vector<WindowResult> out;
  ASSERT_TRUE(w->Add(MakeEvent(0, 1.0, 100), &out).ok());
  ASSERT_TRUE(w->OnWatermark(Watermark{105}, &out).ok());
  EXPECT_TRUE(out.empty());  // gap not yet exceeded
  ASSERT_TRUE(w->OnWatermark(Watermark{111}, &out).ok());
  ASSERT_EQ(out.size(), 1u);
}

TEST_F(SessionTest, ContinuousEventsStayInOneSession) {
  auto w = MakeOk(WindowSpec::Session(10));
  std::vector<WindowResult> out;
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(w->Add(MakeEvent(i, 1.0, i * 9), &out).ok());
  }
  EXPECT_TRUE(out.empty());
  ASSERT_TRUE(w->Flush(&out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].event_count, 50u);
}

}  // namespace
}  // namespace deco
