#include "obs/quantile_sketch.h"

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

#include <gtest/gtest.h>

namespace deco {
namespace {

double ExactQuantile(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  const size_t rank = static_cast<size_t>(
      q * static_cast<double>(values.size() - 1));
  return values[rank];
}

// The DDSketch contract: the answer is within alpha (relative) of the
// value at the queried rank.
void ExpectWithinRelative(double approx, double exact, double alpha) {
  EXPECT_LE(std::fabs(approx - exact), alpha * exact + 1e-9)
      << "approx=" << approx << " exact=" << exact;
}

TEST(QuantileSketchTest, EmptySketchIsZero) {
  QuantileSketch sketch;
  EXPECT_EQ(sketch.count(), 0u);
  EXPECT_EQ(sketch.Quantile(0.5), 0.0);
  EXPECT_EQ(sketch.min(), 0.0);
  EXPECT_EQ(sketch.max(), 0.0);
  EXPECT_EQ(sketch.sum(), 0.0);
}

TEST(QuantileSketchTest, SingleValue) {
  QuantileSketch sketch;
  sketch.Add(42.0);
  EXPECT_EQ(sketch.count(), 1u);
  EXPECT_EQ(sketch.min(), 42.0);
  EXPECT_EQ(sketch.max(), 42.0);
  for (double q : {0.0, 0.5, 0.99, 1.0}) {
    ExpectWithinRelative(sketch.Quantile(q), 42.0, sketch.alpha());
  }
}

TEST(QuantileSketchTest, ZerosLandInZeroBucket) {
  QuantileSketch sketch;
  for (int i = 0; i < 90; ++i) sketch.Add(0.0);
  for (int i = 0; i < 10; ++i) sketch.Add(1000.0);
  EXPECT_EQ(sketch.Quantile(0.5), 0.0);
  ExpectWithinRelative(sketch.Quantile(0.95), 1000.0, sketch.alpha());
}

TEST(QuantileSketchTest, NegativeClampsNanIgnored) {
  QuantileSketch sketch;
  sketch.Add(-5.0);
  sketch.Add(std::nan(""));
  EXPECT_EQ(sketch.count(), 1u);
  EXPECT_EQ(sketch.Quantile(0.5), 0.0);
}

TEST(QuantileSketchTest, RelativeErrorBoundAcrossDistributions) {
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> uniform(1.0, 1e6);
  std::lognormal_distribution<double> lognormal(8.0, 2.0);
  std::exponential_distribution<double> expo(1.0 / 5000.0);

  for (int dist = 0; dist < 3; ++dist) {
    QuantileSketch sketch;
    std::vector<double> values;
    for (int i = 0; i < 20000; ++i) {
      double v = dist == 0   ? uniform(rng)
                 : dist == 1 ? lognormal(rng)
                             : expo(rng);
      values.push_back(v);
      sketch.Add(v);
    }
    for (double q : {0.01, 0.25, 0.5, 0.9, 0.99, 0.999}) {
      ExpectWithinRelative(sketch.Quantile(q), ExactQuantile(values, q),
                           sketch.alpha());
    }
    EXPECT_EQ(sketch.count(), values.size());
    EXPECT_EQ(sketch.min(), *std::min_element(values.begin(), values.end()));
    EXPECT_EQ(sketch.max(), *std::max_element(values.begin(), values.end()));
  }
}

// The governance property: N per-shard sketches merged give the same
// answers as one sketch that saw every value (same alpha ⇒ identical
// bucket boundaries ⇒ lossless merge), and both stay within the relative
// error bound of the exact quantiles.
TEST(QuantileSketchTest, ShardedMergeMatchesSingleAndExact) {
  std::mt19937_64 rng(13);
  std::lognormal_distribution<double> lognormal(6.0, 1.5);
  constexpr int kShards = 32;
  constexpr int kPerShard = 500;

  QuantileSketch single;
  std::vector<QuantileSketch> shards(kShards);
  std::vector<double> values;
  for (int s = 0; s < kShards; ++s) {
    for (int i = 0; i < kPerShard; ++i) {
      const double v = lognormal(rng);
      values.push_back(v);
      single.Add(v);
      shards[s].Add(v);
    }
  }
  QuantileSketch merged;
  for (const QuantileSketch& shard : shards) merged.Merge(shard);

  EXPECT_EQ(merged.count(), single.count());
  // Addition order differs between the two, so the sums agree only to
  // floating-point accumulation error.
  EXPECT_NEAR(merged.sum(), single.sum(), 1e-9 * single.sum());
  EXPECT_EQ(merged.min(), single.min());
  EXPECT_EQ(merged.max(), single.max());
  for (double q : {0.05, 0.5, 0.9, 0.99}) {
    // Lossless merge: bucket-identical, so answers are bit-identical.
    EXPECT_EQ(merged.Quantile(q), single.Quantile(q)) << "q=" << q;
    ExpectWithinRelative(merged.Quantile(q), ExactQuantile(values, q),
                         merged.alpha());
  }
}

TEST(QuantileSketchTest, MergeEmptyAndIntoEmpty) {
  QuantileSketch a, b;
  a.Add(5.0);
  a.Add(10.0);
  b.Merge(a);  // into empty
  EXPECT_EQ(b.count(), 2u);
  EXPECT_EQ(b.min(), 5.0);
  QuantileSketch empty;
  b.Merge(empty);  // merge of empty is a no-op
  EXPECT_EQ(b.count(), 2u);
}

TEST(QuantileSketchTest, BucketBudgetPreservesUpperQuantiles) {
  // Data spanning nine decades with a small bucket budget: low buckets
  // collapse, but the upper quantiles (what alerting reads) keep the
  // relative error bound. 128 buckets at alpha=0.01 cover ~1.1 decades,
  // so everything above q~0.88 of log-uniform data stays exact-bounded.
  QuantileSketch sketch(0.01, 128);
  std::mt19937_64 rng(99);
  std::uniform_real_distribution<double> log_uniform(0.0, 9.0);
  std::vector<double> values;
  for (int i = 0; i < 5000; ++i) {
    const double v = std::pow(10.0, log_uniform(rng));
    values.push_back(v);
    sketch.Add(v);
  }
  EXPECT_LE(sketch.bucket_count(), 128u);
  for (double q : {0.95, 0.99, 0.999}) {
    ExpectWithinRelative(sketch.Quantile(q), ExactQuantile(values, q),
                         sketch.alpha());
  }
}

TEST(QuantileSketchTest, ResetClearsEverything) {
  QuantileSketch sketch;
  sketch.Add(1.0);
  sketch.Add(100.0);
  sketch.Reset();
  EXPECT_EQ(sketch.count(), 0u);
  EXPECT_EQ(sketch.Quantile(0.99), 0.0);
  EXPECT_EQ(sketch.bucket_count(), 0u);
}

TEST(TopKIndicesTest, LargestValuesWithDeterministicTies) {
  const std::vector<uint64_t> values = {5, 9, 9, 1, 7, 9};
  const std::vector<uint32_t> top = TopKIndices(values, 4);
  ASSERT_EQ(top.size(), 4u);
  // Ties broken toward the lower index: 9s at 1, 2, 5, then the 7 at 4.
  EXPECT_EQ(top[0], 1u);
  EXPECT_EQ(top[1], 2u);
  EXPECT_EQ(top[2], 5u);
  EXPECT_EQ(top[3], 4u);
}

TEST(TopKIndicesTest, KLargerThanInput) {
  const std::vector<uint64_t> values = {3, 1};
  const std::vector<uint32_t> top = TopKIndices(values, 10);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0], 0u);
  EXPECT_EQ(top[1], 1u);
}

TEST(SpaceSavingTopKTest, ExactWhenUnderCapacity) {
  SpaceSavingTopK tracker(8);
  for (int i = 0; i < 5; ++i) tracker.Offer(i, static_cast<double>(i + 1));
  const auto top = tracker.Top(3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].key, 4);
  EXPECT_EQ(top[0].weight, 5.0);
  EXPECT_EQ(top[0].error, 0.0);
  EXPECT_EQ(top[1].key, 3);
  EXPECT_EQ(top[2].key, 2);
}

TEST(SpaceSavingTopKTest, HeavyHittersSurviveEviction) {
  // 4 heavy keys among 64 light ones with capacity 8: every true heavy
  // hitter (weight > W/capacity) must be present in the summary.
  SpaceSavingTopK tracker(8);
  std::mt19937_64 rng(3);
  std::uniform_int_distribution<int64_t> light(100, 163);
  for (int round = 0; round < 400; ++round) {
    for (int64_t heavy = 0; heavy < 4; ++heavy) tracker.Offer(heavy, 10.0);
    tracker.Offer(light(rng), 1.0);
  }
  const auto top = tracker.Top(4);
  ASSERT_EQ(top.size(), 4u);
  for (const auto& entry : top) {
    EXPECT_LT(entry.key, 4) << "light key displaced a heavy hitter";
    EXPECT_GE(entry.weight, 4000.0);
  }
}

TEST(SpaceSavingTopKTest, DeterministicTieBreakAndReset) {
  SpaceSavingTopK tracker(4);
  tracker.Offer(7, 2.0);
  tracker.Offer(3, 2.0);
  const auto top = tracker.Top(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].key, 3);  // equal weight → lower key first
  EXPECT_EQ(top[1].key, 7);
  tracker.Reset();
  EXPECT_EQ(tracker.size(), 0u);
  EXPECT_TRUE(tracker.Top(2).empty());
}

}  // namespace
}  // namespace deco
