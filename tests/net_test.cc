#include <gtest/gtest.h>

#include <thread>

#include "common/clock.h"
#include "net/fabric.h"
#include "net/message.h"
#include "net/shaping.h"
#include "sim/scheduler.h"

namespace deco {
namespace {

Message MakeMessage(NodeId src, NodeId dst, MessageType type,
                    size_t payload_bytes) {
  Message msg;
  msg.type = type;
  msg.src = src;
  msg.dst = dst;
  msg.payload.assign(payload_bytes, 'x');
  return msg;
}

// ------------------------------------------------------------ TokenBucket

TEST(TokenBucketTest, StartsFullAndDrains) {
  ManualClock clock(0);
  TokenBucket bucket(1000, &clock);
  EXPECT_EQ(bucket.AvailableTokens(), 1000u);
  EXPECT_TRUE(bucket.TryAcquire(600));
  EXPECT_FALSE(bucket.TryAcquire(600));
  EXPECT_TRUE(bucket.TryAcquire(400));
}

TEST(TokenBucketTest, RefillsWithTime) {
  ManualClock clock(0);
  TokenBucket bucket(1000, &clock);
  ASSERT_TRUE(bucket.TryAcquire(1000));
  EXPECT_FALSE(bucket.TryAcquire(1));
  clock.Advance(kNanosPerSecond / 2);  // half a second -> 500 tokens
  EXPECT_TRUE(bucket.TryAcquire(450));
  EXPECT_FALSE(bucket.TryAcquire(100));
}

TEST(TokenBucketTest, CapacityIsBounded) {
  ManualClock clock(0);
  TokenBucket bucket(100, &clock);
  clock.Advance(100 * kNanosPerSecond);  // a long idle period
  EXPECT_EQ(bucket.AvailableTokens(), 100u);  // capped at 1s worth
}

TEST(TokenBucketTest, AcquireBlockingPaysDebt) {
  // With the real clock: acquiring twice the rate must take ~1 second of
  // wall time in total; we use a small rate to keep the test fast but
  // meaningful.
  TokenBucket bucket(100'000, SystemClock::Default());
  bucket.AcquireBlocking(100'000);  // drains the initial burst
  const TimeNanos start = SystemClock::Default()->NowNanos();
  bucket.AcquireBlocking(20'000);  // must wait ~0.2 s
  const TimeNanos elapsed = SystemClock::Default()->NowNanos() - start;
  EXPECT_GT(elapsed, 120 * kNanosPerMilli);
}

// ---------------------------------------------------------------- Fabric

class FabricTest : public ::testing::Test {
 protected:
  FabricTest() : fabric_(SystemClock::Default(), 1) {
    a_ = fabric_.RegisterNode("a");
    b_ = fabric_.RegisterNode("b");
  }
  NetworkFabric fabric_;
  NodeId a_, b_;
};

TEST_F(FabricTest, RegistersDenseIds) {
  EXPECT_EQ(a_, 0u);
  EXPECT_EQ(b_, 1u);
  EXPECT_EQ(fabric_.node_count(), 2u);
  EXPECT_EQ(fabric_.node_name(a_), "a");
  EXPECT_EQ(fabric_.node_name(99), "<unknown>");
}

TEST_F(FabricTest, DeliversInFifoOrder) {
  for (int i = 0; i < 100; ++i) {
    Message msg = MakeMessage(a_, b_, MessageType::kPartialResult, 8);
    msg.window_index = i;
    ASSERT_TRUE(fabric_.Send(std::move(msg)).ok());
  }
  Mailbox* mailbox = fabric_.mailbox(b_);
  for (int i = 0; i < 100; ++i) {
    auto msg = mailbox->Pop();
    ASSERT_TRUE(msg.has_value());
    EXPECT_EQ(msg->window_index, static_cast<uint64_t>(i));
  }
}

TEST_F(FabricTest, AccountsBytesPerLinkAndNode) {
  const size_t kPayload = 100;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        fabric_.Send(MakeMessage(a_, b_, MessageType::kEventBatch, kPayload))
            .ok());
  }
  const size_t wire = kPayload + Message::kHeaderBytes;
  const LinkStats link = fabric_.link_stats(a_, b_);
  EXPECT_EQ(link.messages_sent, 5u);
  EXPECT_EQ(link.bytes_sent, 5 * wire);
  const NodeTrafficStats src = fabric_.node_stats(a_);
  EXPECT_EQ(src.bytes_sent, 5 * wire);
  EXPECT_EQ(src.messages_received, 0u);
  const NodeTrafficStats dst = fabric_.node_stats(b_);
  EXPECT_EQ(dst.bytes_received, 5 * wire);
  const NetworkStats stats = fabric_.Stats();
  EXPECT_EQ(stats.total_bytes, 5 * wire);
  EXPECT_EQ(stats.total_messages, 5u);
}

TEST_F(FabricTest, CountsTrafficPerMessageType) {
  ASSERT_TRUE(
      fabric_.Send(MakeMessage(a_, b_, MessageType::kEventBatch, 100)).ok());
  ASSERT_TRUE(
      fabric_.Send(MakeMessage(a_, b_, MessageType::kPartialResult, 10))
          .ok());
  ASSERT_TRUE(
      fabric_.Send(MakeMessage(a_, b_, MessageType::kPartialResult, 20))
          .ok());
  const NodeTrafficStats src = fabric_.node_stats(a_);
  const size_t batch = static_cast<size_t>(MessageType::kEventBatch);
  const size_t partial = static_cast<size_t>(MessageType::kPartialResult);
  EXPECT_EQ(src.messages_sent_by_type[batch], 1u);
  EXPECT_EQ(src.bytes_sent_by_type[batch], 100 + Message::kHeaderBytes);
  EXPECT_EQ(src.messages_sent_by_type[partial], 2u);
  EXPECT_EQ(src.bytes_sent_by_type[partial],
            30 + 2 * Message::kHeaderBytes);
  // The per-type split always sums to the untyped totals.
  uint64_t messages = 0, bytes = 0;
  for (size_t i = 0; i < kNumMessageTypes; ++i) {
    messages += src.messages_sent_by_type[i];
    bytes += src.bytes_sent_by_type[i];
  }
  EXPECT_EQ(messages, src.messages_sent);
  EXPECT_EQ(bytes, src.bytes_sent);

  fabric_.ResetStats();
  EXPECT_EQ(fabric_.node_stats(a_).messages_sent_by_type[batch], 0u);
  EXPECT_EQ(fabric_.node_stats(a_).bytes_sent_by_type[partial], 0u);
}

TEST_F(FabricTest, HopStampingDoesNotChangeByteAccounting) {
  // Causal tracing must be free on the wire: the hop record rides the
  // in-process Message struct and never counts toward WireSize, so the
  // byte accounting is identical with and without stamping.
  SetHopStampingEnabled(false);
  ASSERT_TRUE(
      fabric_.Send(MakeMessage(a_, b_, MessageType::kEventBatch, 64)).ok());
  const uint64_t plain_bytes = fabric_.node_stats(a_).bytes_sent;
  ASSERT_GT(plain_bytes, 0u);

  fabric_.ResetStats();
  SetHopStampingEnabled(true);
  ASSERT_TRUE(
      fabric_.Send(MakeMessage(a_, b_, MessageType::kEventBatch, 64)).ok());
  SetHopStampingEnabled(false);
  EXPECT_EQ(fabric_.node_stats(a_).bytes_sent, plain_bytes);

  auto unstamped = fabric_.mailbox(b_)->Pop();
  auto stamped = fabric_.mailbox(b_)->Pop();
  ASSERT_TRUE(unstamped.has_value());
  ASSERT_TRUE(stamped.has_value());
  EXPECT_EQ(unstamped->WireSize(), stamped->WireSize());
  EXPECT_EQ(MessageCausalId(*unstamped), 0u);
#if DECO_TRACE_ENABLED
  // With stamping on, the fabric assigned a causal id and timestamps.
  EXPECT_NE(stamped->hop.msg_id, 0u);
  EXPECT_GT(stamped->hop.enqueue_nanos, 0);
  EXPECT_GE(stamped->hop.deliver_nanos, stamped->hop.enqueue_nanos);
#else
  EXPECT_EQ(MessageCausalId(*stamped), 0u);
#endif
}

TEST_F(FabricTest, ResetStatsClearsCounters) {
  ASSERT_TRUE(
      fabric_.Send(MakeMessage(a_, b_, MessageType::kEventBatch, 10)).ok());
  fabric_.ResetStats();
  EXPECT_EQ(fabric_.Stats().total_bytes, 0u);
  EXPECT_EQ(fabric_.link_stats(a_, b_).messages_sent, 0u);
}

TEST_F(FabricTest, ResetStatsClearsEveryPerLinkCounter) {
  // Regression: ResetStats must zero the whole per-link struct (including
  // drop counts), not just the per-node totals.
  LinkConfig link;
  link.drop_probability = 1.0;
  ASSERT_TRUE(fabric_.SetLinkConfig(a_, b_, link).ok());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        fabric_.Send(MakeMessage(a_, b_, MessageType::kEventBatch, 8)).ok());
  }
  ASSERT_EQ(fabric_.link_stats(a_, b_).messages_dropped, 4u);
  ASSERT_GT(fabric_.Stats().total_dropped, 0u);

  fabric_.ResetStats();
  const LinkStats after = fabric_.link_stats(a_, b_);
  EXPECT_EQ(after.messages_sent, 0u);
  EXPECT_EQ(after.bytes_sent, 0u);
  EXPECT_EQ(after.messages_dropped, 0u);
  EXPECT_EQ(fabric_.Stats().total_dropped, 0u);
  EXPECT_EQ(fabric_.node_stats(a_).bytes_sent, 0u);
}

TEST_F(FabricTest, QueueDepthTracksMailbox) {
  EXPECT_EQ(fabric_.queue_depth(b_), 0u);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        fabric_.Send(MakeMessage(a_, b_, MessageType::kEventBatch, 8)).ok());
  }
  EXPECT_EQ(fabric_.queue_depth(b_), 3u);
  EXPECT_EQ(fabric_.queue_depth(a_), 0u);
  ASSERT_TRUE(fabric_.mailbox(b_)->Pop().has_value());
  EXPECT_EQ(fabric_.queue_depth(b_), 2u);
  // Unknown ids read as empty rather than crashing the sampler.
  EXPECT_EQ(fabric_.queue_depth(999), 0u);
}

TEST_F(FabricTest, UnknownEndpointsRejected) {
  EXPECT_TRUE(fabric_.Send(MakeMessage(42, b_, MessageType::kEventBatch, 1))
                  .IsInvalidArgument());
  EXPECT_TRUE(fabric_.Send(MakeMessage(a_, 42, MessageType::kEventBatch, 1))
                  .IsInvalidArgument());
}

TEST_F(FabricTest, DropProbabilityOneDropsEverything) {
  LinkConfig link;
  link.drop_probability = 1.0;
  ASSERT_TRUE(fabric_.SetLinkConfig(a_, b_, link).ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        fabric_.Send(MakeMessage(a_, b_, MessageType::kEventBatch, 8)).ok());
  }
  EXPECT_EQ(fabric_.mailbox(b_)->size(), 0u);
  const LinkStats stats = fabric_.link_stats(a_, b_);
  EXPECT_EQ(stats.messages_dropped, 10u);
  // Bytes still count: they left the sender's NIC.
  EXPECT_GT(stats.bytes_sent, 0u);
}

TEST_F(FabricTest, DropProbabilityValidated) {
  LinkConfig link;
  link.drop_probability = 1.5;
  EXPECT_TRUE(fabric_.SetLinkConfig(a_, b_, link).IsInvalidArgument());
  link.drop_probability = 0.5;
  link.latency_nanos = -1;
  EXPECT_TRUE(fabric_.SetLinkConfig(a_, b_, link).IsInvalidArgument());
}

TEST_F(FabricTest, DownSenderFailsDownReceiverSwallows) {
  ASSERT_TRUE(fabric_.SetNodeDown(a_, true).ok());
  EXPECT_TRUE(fabric_.Send(MakeMessage(a_, b_, MessageType::kEventBatch, 1))
                  .IsNodeFailed());
  ASSERT_TRUE(fabric_.SetNodeDown(a_, false).ok());
  ASSERT_TRUE(fabric_.SetNodeDown(b_, true).ok());
  EXPECT_TRUE(fabric_.IsNodeDown(b_));
  // Send succeeds (bytes spent) but nothing arrives.
  ASSERT_TRUE(
      fabric_.Send(MakeMessage(a_, b_, MessageType::kEventBatch, 1)).ok());
  EXPECT_EQ(fabric_.mailbox(b_)->size(), 0u);
  // Recovery allows delivery again.
  ASSERT_TRUE(fabric_.SetNodeDown(b_, false).ok());
  ASSERT_TRUE(
      fabric_.Send(MakeMessage(a_, b_, MessageType::kEventBatch, 1)).ok());
  EXPECT_EQ(fabric_.mailbox(b_)->size(), 1u);
}

TEST_F(FabricTest, LatencyDelaysDelivery) {
  LinkConfig link;
  link.latency_nanos = 50 * kNanosPerMilli;
  ASSERT_TRUE(fabric_.SetLinkConfig(a_, b_, link).ok());
  const TimeNanos start = SystemClock::Default()->NowNanos();
  ASSERT_TRUE(
      fabric_.Send(MakeMessage(a_, b_, MessageType::kEventBatch, 4)).ok());
  auto msg =
      fabric_.mailbox(b_)->PopWithTimeout(std::chrono::milliseconds(500));
  const TimeNanos elapsed = SystemClock::Default()->NowNanos() - start;
  ASSERT_TRUE(msg.has_value());
  EXPECT_GE(elapsed, 45 * kNanosPerMilli);
}

TEST_F(FabricTest, LatencyPreservesPerLinkOrder) {
  LinkConfig link;
  link.latency_nanos = 5 * kNanosPerMilli;
  ASSERT_TRUE(fabric_.SetLinkConfig(a_, b_, link).ok());
  for (int i = 0; i < 20; ++i) {
    Message msg = MakeMessage(a_, b_, MessageType::kEventBatch, 4);
    msg.window_index = i;
    ASSERT_TRUE(fabric_.Send(std::move(msg)).ok());
  }
  for (int i = 0; i < 20; ++i) {
    auto msg =
        fabric_.mailbox(b_)->PopWithTimeout(std::chrono::milliseconds(500));
    ASSERT_TRUE(msg.has_value());
    EXPECT_EQ(msg->window_index, static_cast<uint64_t>(i));
  }
}

TEST_F(FabricTest, FifoPreservedAcrossRuntimeLatencyChange) {
  // Regression for runtime-mutable shaping: a message in flight on a slow
  // link must not be overtaken by one sent after the latency was lowered
  // (a chaos `lag` restore would otherwise reorder a FIFO link).
  LinkConfig link;
  link.latency_nanos = 30 * kNanosPerMilli;
  ASSERT_TRUE(fabric_.SetLinkConfig(a_, b_, link).ok());
  Message slow = MakeMessage(a_, b_, MessageType::kEventBatch, 4);
  slow.window_index = 1;
  ASSERT_TRUE(fabric_.Send(std::move(slow)).ok());

  link.latency_nanos = 0;
  ASSERT_TRUE(fabric_.SetLinkConfig(a_, b_, link).ok());
  Message fast = MakeMessage(a_, b_, MessageType::kEventBatch, 4);
  fast.window_index = 2;
  ASSERT_TRUE(fabric_.Send(std::move(fast)).ok());

  auto first =
      fabric_.mailbox(b_)->PopWithTimeout(std::chrono::milliseconds(500));
  auto second =
      fabric_.mailbox(b_)->PopWithTimeout(std::chrono::milliseconds(500));
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(first->window_index, 1u);
  EXPECT_EQ(second->window_index, 2u);
}

TEST_F(FabricTest, BlockedLinkDropsUntilUnblocked) {
  ASSERT_TRUE(fabric_.SetLinkBlocked(a_, b_, true).ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        fabric_.Send(MakeMessage(a_, b_, MessageType::kEventBatch, 8)).ok());
  }
  EXPECT_EQ(fabric_.mailbox(b_)->size(), 0u);
  EXPECT_EQ(fabric_.link_stats(a_, b_).messages_dropped, 5u);
  // The reverse direction is unaffected.
  ASSERT_TRUE(
      fabric_.Send(MakeMessage(b_, a_, MessageType::kEventBatch, 8)).ok());
  EXPECT_EQ(fabric_.mailbox(a_)->size(), 1u);
  // SetLinkBlocked must preserve the link's other shaping fields.
  auto config = fabric_.GetLinkConfig(a_, b_);
  ASSERT_TRUE(config.ok());
  EXPECT_TRUE(config->blocked);
  EXPECT_DOUBLE_EQ(config->drop_probability, 0.0);

  ASSERT_TRUE(fabric_.SetLinkBlocked(a_, b_, false).ok());
  ASSERT_TRUE(
      fabric_.Send(MakeMessage(a_, b_, MessageType::kEventBatch, 8)).ok());
  EXPECT_EQ(fabric_.mailbox(b_)->size(), 1u);
}

TEST_F(FabricTest, PartitionNodeBlocksBothDirections) {
  ASSERT_TRUE(fabric_.PartitionNode(b_, true).ok());
  ASSERT_TRUE(
      fabric_.Send(MakeMessage(a_, b_, MessageType::kEventBatch, 8)).ok());
  ASSERT_TRUE(
      fabric_.Send(MakeMessage(b_, a_, MessageType::kEventBatch, 8)).ok());
  EXPECT_EQ(fabric_.mailbox(b_)->size(), 0u);
  EXPECT_EQ(fabric_.mailbox(a_)->size(), 0u);

  ASSERT_TRUE(fabric_.PartitionNode(b_, false).ok());
  ASSERT_TRUE(
      fabric_.Send(MakeMessage(a_, b_, MessageType::kEventBatch, 8)).ok());
  ASSERT_TRUE(
      fabric_.Send(MakeMessage(b_, a_, MessageType::kEventBatch, 8)).ok());
  EXPECT_EQ(fabric_.mailbox(b_)->size(), 1u);
  EXPECT_EQ(fabric_.mailbox(a_)->size(), 1u);
}

TEST_F(FabricTest, RevivePurgesStaleMailboxAndBumpsIncarnation) {
  // Regression: a revived node must not replay messages that were queued
  // before its crash — a rebooted host has lost its receive buffers.
  ASSERT_TRUE(
      fabric_.Send(MakeMessage(a_, b_, MessageType::kEventBatch, 8)).ok());
  ASSERT_EQ(fabric_.queue_depth(b_), 1u);
  EXPECT_EQ(fabric_.node_incarnation(b_), 0u);

  ASSERT_TRUE(fabric_.SetNodeDown(b_, true).ok());
  // The stale message stays queued while the node is down (nobody reads),
  // and is swept exactly at revive time.
  EXPECT_EQ(fabric_.queue_depth(b_), 1u);
  ASSERT_TRUE(fabric_.SetNodeDown(b_, false).ok());
  EXPECT_EQ(fabric_.queue_depth(b_), 0u);
  EXPECT_EQ(fabric_.node_incarnation(b_), 1u);

  // Post-revive traffic flows normally.
  ASSERT_TRUE(
      fabric_.Send(MakeMessage(a_, b_, MessageType::kEventBatch, 8)).ok());
  auto msg = fabric_.mailbox(b_)->TryPop();
  ASSERT_TRUE(msg.has_value());
}

TEST_F(FabricTest, LinkCountersSurviveCrashAndRestart) {
  ASSERT_TRUE(
      fabric_.Send(MakeMessage(a_, b_, MessageType::kEventBatch, 8)).ok());
  const LinkStats before = fabric_.link_stats(a_, b_);
  ASSERT_EQ(before.messages_sent, 1u);

  ASSERT_TRUE(fabric_.SetNodeDown(b_, true).ok());
  // Traffic to a down node counts as dropped on the link.
  ASSERT_TRUE(
      fabric_.Send(MakeMessage(a_, b_, MessageType::kEventBatch, 8)).ok());
  ASSERT_TRUE(fabric_.SetNodeDown(b_, false).ok());
  ASSERT_TRUE(
      fabric_.Send(MakeMessage(a_, b_, MessageType::kEventBatch, 8)).ok());

  const LinkStats after = fabric_.link_stats(a_, b_);
  EXPECT_EQ(after.messages_sent, 3u);
  EXPECT_EQ(after.messages_dropped, before.messages_dropped + 1);
  EXPECT_GT(after.bytes_sent, before.bytes_sent);
}

TEST(FabricSimTest, EgressCapThrottlesSender) {
  // Simulation-driven: the throttle delay is exact virtual time — 10'000
  // bytes at 50'000 B/s is precisely 0.2 s — instead of a lower bound on
  // noisy wall-clock sleeps.
  SimScheduler sim(1);
  NetworkFabric fabric(sim.clock(), 1);
  fabric.SetSimScheduler(&sim);
  const NodeId a = fabric.RegisterNode("a");
  const NodeId b = fabric.RegisterNode("b");
  NodeNetConfig net;
  net.egress_bytes_per_sec = 50'000;
  ASSERT_TRUE(fabric.SetNodeNetConfig(a, net).ok());
  TimeNanos elapsed = 0;
  const SimTaskId sender = sim.AddTask("sender");
  std::thread t([&] {
    sim.TaskMain(sender, [&] {
      // Drain the initial burst, then measure.
      ASSERT_TRUE(fabric
                      .Send(MakeMessage(a, b, MessageType::kEventBatch,
                                        50'000 - Message::kHeaderBytes))
                      .ok());
      const TimeNanos start = sim.clock()->NowNanos();
      ASSERT_TRUE(fabric
                      .Send(MakeMessage(a, b, MessageType::kEventBatch,
                                        10'000 - Message::kHeaderBytes))
                      .ok());
      elapsed = sim.clock()->NowNanos() - start;
    });
  });
  EXPECT_TRUE(sim.RunUntilTaskDone(sender).ok());
  t.join();
  EXPECT_GE(elapsed, 200 * kNanosPerMilli);  // exactly 0.2s nominally
  EXPECT_LE(elapsed, 201 * kNanosPerMilli);
}

TEST(FabricSimTest, FlowControlBlocksEventBatchesOnly) {
  // Simulation-driven: at virtual 20ms the sixth batch is *provably*
  // still blocked (flow control is the only thing that can stop the
  // sender, and virtual time only advances when it is blocked) — the
  // wall-clock version could only hope the sender thread had been
  // scheduled by then.
  SimScheduler sim(1);
  NetworkFabric fabric(sim.clock(), 1);
  fabric.SetSimScheduler(&sim);
  const NodeId a = fabric.RegisterNode("a");
  const NodeId b = fabric.RegisterNode("b");
  fabric.SetFlowControlLimit(4);
  bool sent = false;
  const SimTaskId sender = sim.AddTask("sender");
  std::thread t([&] {
    sim.TaskMain(sender, [&] {
      for (int i = 0; i < 6; ++i) {
        ASSERT_TRUE(
            fabric.Send(MakeMessage(a, b, MessageType::kEventBatch, 1)).ok());
      }
      sent = true;
    });
  });
  sim.ScheduleAt(20 * kNanosPerMilli, [&] {
    EXPECT_FALSE(sent);  // sixth event batch still blocked
    // Control messages bypass flow control and pass immediately.
    EXPECT_TRUE(
        fabric.Send(MakeMessage(a, b, MessageType::kWindowAssignment, 1))
            .ok());
    // Draining the receiver below the limit releases the sender.
    for (int i = 0; i < 3; ++i) {
      EXPECT_TRUE(fabric.mailbox(b)->TryPop().has_value());
    }
  });
  EXPECT_TRUE(sim.RunUntilTaskDone(sender).ok());
  t.join();
  EXPECT_TRUE(sent);
}

TEST_F(FabricTest, ShutdownClosesMailboxes) {
  fabric_.Shutdown();
  EXPECT_FALSE(fabric_.mailbox(a_)->Pop().has_value());
}

TEST_F(FabricTest, TracksQueueDepthHighWater) {
  EXPECT_EQ(fabric_.node_stats(b_).queue_depth_high_water, 0u);
  for (int i = 0; i < 7; ++i) {
    ASSERT_TRUE(
        fabric_.Send(MakeMessage(a_, b_, MessageType::kPartialResult, 8))
            .ok());
  }
  // Nothing was received yet: all 7 messages sit in the mailbox, and the
  // high-water mark saw every intermediate depth up to 7.
  EXPECT_EQ(fabric_.queue_depth(b_), 7u);
  EXPECT_EQ(fabric_.node_stats(b_).queue_depth_high_water, 7u);

  // Draining does not lower the mark — it is a high-water, not a gauge.
  Mailbox* mailbox = fabric_.mailbox(b_);
  for (int i = 0; i < 7; ++i) ASSERT_TRUE(mailbox->Pop().has_value());
  EXPECT_EQ(fabric_.queue_depth(b_), 0u);
  EXPECT_EQ(fabric_.node_stats(b_).queue_depth_high_water, 7u);

  // A shallower burst after the drain leaves the mark untouched...
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        fabric_.Send(MakeMessage(a_, b_, MessageType::kPartialResult, 8))
            .ok());
  }
  EXPECT_EQ(fabric_.node_stats(b_).queue_depth_high_water, 7u);
  EXPECT_EQ(fabric_.Stats().per_node[b_].queue_depth_high_water, 7u);

  // ...and ResetStats rearms it.
  fabric_.ResetStats();
  EXPECT_EQ(fabric_.node_stats(b_).queue_depth_high_water, 0u);
}

TEST(MessageTest, LatencyMetaWeightedMerge) {
  Message msg;
  msg.MergeLatencyMeta(100.0, 1);
  msg.MergeLatencyMeta(200.0, 3);
  EXPECT_EQ(msg.lat_event_count, 4u);
  EXPECT_DOUBLE_EQ(msg.lat_mean_create_nanos, 175.0);
  msg.MergeLatencyMeta(0.0, 0);  // no-op
  EXPECT_EQ(msg.lat_event_count, 4u);
}

TEST(MessageTest, TypeNames) {
  EXPECT_STREQ(MessageTypeToString(MessageType::kEventBatch), "event-batch");
  EXPECT_STREQ(MessageTypeToString(MessageType::kCorrectionRequest),
               "correction-request");
}

}  // namespace
}  // namespace deco
