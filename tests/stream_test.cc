#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/clock.h"
#include "node/ingest.h"
#include "node/stream_set.h"
#include "stream/generator.h"
#include "stream/rate_model.h"

namespace deco {
namespace {

StreamConfig BasicStream(StreamId id, double rate, double change,
                         uint64_t seed = 42) {
  StreamConfig config;
  config.stream_id = id;
  config.rate.base_rate = rate;
  config.rate.change_fraction = change;
  config.rate.epoch_events = 100;
  config.seed = seed;
  return config;
}

// -------------------------------------------------------------- RateModel

TEST(RateModelTest, ValidatesConfig) {
  RateModelConfig bad;
  bad.base_rate = 0;
  EXPECT_FALSE(bad.Validate().ok());
  bad.base_rate = 10;
  bad.change_fraction = -0.1;
  EXPECT_FALSE(bad.Validate().ok());
  bad.change_fraction = 0.1;
  bad.epoch_events = 0;
  EXPECT_FALSE(bad.Validate().ok());
}

TEST(RateModelTest, ConstantRateGivesConstantGaps) {
  RateModelConfig config;
  config.base_rate = 1000;  // 1ms gaps
  config.change_fraction = 0.0;
  RateModel model(config, 1);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(model.NextGapNanos(), kNanosPerMilli);
  }
}

TEST(RateModelTest, RateStaysWithinChangeBounds) {
  RateModelConfig config;
  config.base_rate = 100;
  config.change_fraction = 0.05;  // the paper's "95 to 105 events/s" example
  config.epoch_events = 10;
  RateModel model(config, 7);
  for (int i = 0; i < 2000; ++i) {
    model.NextGapNanos();
    EXPECT_GE(model.current_rate(), 95.0);
    EXPECT_LE(model.current_rate(), 105.0);
  }
}

TEST(RateModelTest, RateChangesAcrossEpochs) {
  RateModelConfig config;
  config.base_rate = 100;
  config.change_fraction = 0.5;
  config.epoch_events = 10;
  RateModel model(config, 7);
  std::vector<double> rates;
  for (int i = 0; i < 100; ++i) {
    model.NextGapNanos();
    rates.push_back(model.current_rate());
  }
  // At least two distinct instantaneous rates must have been observed.
  std::sort(rates.begin(), rates.end());
  EXPECT_GT(rates.back() - rates.front(), 1.0);
}

TEST(RateModelTest, DeterministicForSeed) {
  RateModelConfig config;
  config.base_rate = 500;
  config.change_fraction = 0.2;
  config.epoch_events = 5;
  RateModel a(config, 3), b(config, 3);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.NextGapNanos(), b.NextGapNanos());
  }
}

TEST(RateModelTest, ExtremeChangeNeverStallsTime) {
  RateModelConfig config;
  config.base_rate = 100;
  config.change_fraction = 1.0;  // rates can approach zero
  config.epoch_events = 3;
  RateModel model(config, 13);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(model.NextGapNanos(), 0);
  }
}

// ------------------------------------------------------------ StreamSource

TEST(StreamSourceTest, IdsSequentialTimestampsMonotonic) {
  StreamSource source(BasicStream(3, 1000, 0.1));
  EventTime last_ts = -1;
  for (EventId i = 0; i < 1000; ++i) {
    const Event e = source.Next();
    EXPECT_EQ(e.id, i);
    EXPECT_EQ(e.stream_id, 3u);
    EXPECT_GT(e.timestamp, last_ts);
    last_ts = e.timestamp;
  }
  EXPECT_EQ(source.emitted(), 1000u);
  EXPECT_EQ(source.last_timestamp(), last_ts);
}

TEST(StreamSourceTest, DeterministicReplay) {
  StreamSource a(BasicStream(0, 500, 0.3, 11));
  StreamSource b(BasicStream(0, 500, 0.3, 11));
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(StreamSourceTest, BatchMatchesSingles) {
  StreamSource a(BasicStream(0, 500, 0.0, 5));
  StreamSource b(BasicStream(0, 500, 0.0, 5));
  EventVec batch;
  a.NextBatch(64, &batch);
  for (const Event& e : batch) {
    EXPECT_EQ(e, b.Next());
  }
}

TEST(StreamSourceTest, ValuesFollowBoundedTrajectory) {
  StreamConfig config = BasicStream(0, 1000, 0.0);
  config.value.amplitude = 10.0;
  config.value.noise_stddev = 0.1;
  StreamSource source(config);
  for (int i = 0; i < 5000; ++i) {
    const Event e = source.Next();
    EXPECT_LT(std::abs(e.value), 12.0);  // amplitude + generous noise room
  }
}

TEST(StreamSourceTest, MeanRateApproximatesConfig) {
  StreamSource source(BasicStream(0, 1000, 0.05));
  const int kEvents = 20'000;
  EventTime first = 0, last = 0;
  for (int i = 0; i < kEvents; ++i) {
    const Event e = source.Next();
    if (i == 0) first = e.timestamp;
    last = e.timestamp;
  }
  const double seconds = static_cast<double>(last - first) / kNanosPerSecond;
  const double measured = (kEvents - 1) / seconds;
  EXPECT_NEAR(measured, 1000.0, 30.0);
}

// -------------------------------------------------------- DisorderInjector

TEST(DisorderInjectorTest, ZeroProbabilityPreservesOrder) {
  StreamSource source(BasicStream(0, 1000, 0.1));
  DisorderInjector injector(&source, 0.0, 4, 1);
  EventTime last = -1;
  for (int i = 0; i < 1000; ++i) {
    const Event e = injector.Next();
    EXPECT_GT(e.timestamp, last);
    last = e.timestamp;
  }
}

TEST(DisorderInjectorTest, IntroducesOutOfOrderEventsWithoutLoss) {
  StreamSource source(BasicStream(0, 1000, 0.1, 3));
  DisorderInjector injector(&source, 0.2, 4, 3);
  std::vector<EventId> ids;
  int inversions = 0;
  EventTime last = -1;
  for (int i = 0; i < 2000; ++i) {
    const Event e = injector.Next();
    if (e.timestamp < last) ++inversions;
    last = e.timestamp;
    ids.push_back(e.id);
  }
  EXPECT_GT(inversions, 10);
  // No event lost or duplicated within the drained prefix.
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end());
}

// --------------------------------------------------------------- StreamSet

TEST(StreamSetTest, MergesInGlobalOrder) {
  std::vector<StreamConfig> configs;
  configs.push_back(BasicStream(0, 900, 0.2, 1));
  configs.push_back(BasicStream(1, 1100, 0.2, 2));
  configs.push_back(BasicStream(2, 500, 0.2, 3));
  StreamSet set(configs);
  EXPECT_EQ(set.stream_count(), 3u);
  EventTimestampLess less;
  Event prev = set.Next();
  for (int i = 1; i < 5000; ++i) {
    const Event e = set.Next();
    EXPECT_FALSE(less(e, prev)) << "merge order violated at " << i;
    prev = e;
  }
  EXPECT_EQ(set.position(), 5000u);
}

TEST(StreamSetTest, TotalRateSumsStreams) {
  std::vector<StreamConfig> configs;
  configs.push_back(BasicStream(0, 300, 0.0));
  configs.push_back(BasicStream(1, 700, 0.0));
  StreamSet set(configs);
  EXPECT_NEAR(set.TotalRate(), 1000.0, 1e-9);
}

TEST(StreamSetTest, AllStreamsRepresented) {
  std::vector<StreamConfig> configs;
  for (StreamId s = 0; s < 4; ++s) {
    configs.push_back(BasicStream(s, 1000, 0.0, s + 1));
  }
  StreamSet set(configs);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 4000; ++i) ++counts[set.Next().stream_id];
  for (int c : counts) EXPECT_NEAR(c, 1000, 50);
}

// ------------------------------------------------------------ IngestSource

TEST(IngestSourceTest, RespectsEventBudget) {
  IngestConfig config;
  config.streams.push_back(BasicStream(0, 1000, 0.0));
  config.events_to_produce = 1000;
  config.batch_size = 300;
  IngestSource source(config, SystemClock::Default());

  EventVec out;
  TimeNanos create = 0;
  uint64_t total = 0;
  while (true) {
    out.clear();
    const size_t pulled = source.Pull(300, &out, &create);
    if (pulled == 0) break;
    total += pulled;
    EXPECT_GT(create, 0);
  }
  EXPECT_EQ(total, 1000u);
  EXPECT_TRUE(source.exhausted());
  EXPECT_EQ(source.position(), 1000u);
}

TEST(IngestSourceTest, LastPullIsShort) {
  IngestConfig config;
  config.streams.push_back(BasicStream(0, 1000, 0.0));
  config.events_to_produce = 250;
  IngestSource source(config, SystemClock::Default());
  EventVec out;
  TimeNanos create = 0;
  EXPECT_EQ(source.Pull(200, &out, &create), 200u);
  EXPECT_EQ(source.Pull(200, &out, &create), 50u);
  EXPECT_EQ(source.Pull(200, &out, &create), 0u);
}

TEST(IngestSourceTest, CpuThrottleLimitsRate) {
  IngestConfig config;
  config.streams.push_back(BasicStream(0, 1e9, 0.0));
  config.events_to_produce = 30'000;
  config.cpu_events_per_sec = 20'000;  // weak device
  IngestSource source(config, SystemClock::Default());
  EventVec out;
  TimeNanos create = 0;
  // Drain the initial token-bucket burst (one second's allowance)...
  size_t pulled = source.Pull(20'000, &out, &create);
  ASSERT_EQ(pulled, 20'000u);
  // ...then pulling 10k more events must take about 0.5 s of wall time.
  const TimeNanos start = SystemClock::Default()->NowNanos();
  out.clear();
  pulled = source.Pull(10'000, &out, &create);
  const TimeNanos elapsed = SystemClock::Default()->NowNanos() - start;
  EXPECT_EQ(pulled, 10'000u);
  EXPECT_GT(elapsed, 300 * kNanosPerMilli);
}

}  // namespace
}  // namespace deco
