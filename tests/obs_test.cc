#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "net/fabric.h"
#include "obs/export.h"
#include "obs/metric_registry.h"
#include "obs/sampler.h"
#include "obs/trace.h"

namespace deco {
namespace {

// ---------------------------------------------------------------- Counter

TEST(CounterTest, AddAndIncrementAccumulate) {
  Counter c;
  EXPECT_EQ(c.value(), 0);
  c.Add(5);
  c.Increment();
  c.Add(-2);
  EXPECT_EQ(c.value(), 4);
  c.Reset();
  EXPECT_EQ(c.value(), 0);
}

TEST(CounterTest, ConcurrentAddsAreLossless) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), int64_t{kThreads} * kPerThread);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  g.Set(10);
  g.Add(-3);
  EXPECT_EQ(g.value(), 7);
  g.Set(100);
  EXPECT_EQ(g.value(), 100);
  g.Reset();
  EXPECT_EQ(g.value(), 0);
}

TEST(ShardedHistogramTest, MergedCombinesStripes) {
  ShardedHistogram h;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < 1000; ++i) h.Record(t * 1000 + i);
    });
  }
  for (std::thread& t : threads) t.join();
  const Histogram merged = h.Merged();
  EXPECT_EQ(merged.count(), 4000u);
  EXPECT_EQ(merged.min(), 0);
  EXPECT_GE(merged.max(), 3900);
  h.Reset();
  EXPECT_EQ(h.Merged().count(), 0u);
}

// --------------------------------------------------------- MetricRegistry

TEST(MetricRegistryTest, InstrumentPointersAreStable) {
  MetricRegistry registry;
  Counter* c1 = registry.counter("requests");
  Counter* c2 = registry.counter("requests");
  EXPECT_EQ(c1, c2);
  EXPECT_NE(registry.counter("other"), c1);
  // Reset zeroes values but keeps registrations and pointers valid.
  c1->Add(7);
  registry.Reset();
  EXPECT_EQ(c1->value(), 0);
  EXPECT_EQ(registry.counter("requests"), c1);
}

TEST(MetricRegistryTest, SnapshotIsNameSortedAndComplete) {
  MetricRegistry registry;
  registry.counter("b.count")->Add(2);
  registry.counter("a.count")->Add(1);
  registry.gauge("depth")->Set(42);
  registry.histogram("lat")->Record(100);
  const MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.size(), 2u);
  EXPECT_EQ(snapshot.counters[0].first, "a.count");
  EXPECT_EQ(snapshot.counters[0].second, 1);
  EXPECT_EQ(snapshot.counters[1].first, "b.count");
  ASSERT_EQ(snapshot.gauges.size(), 1u);
  EXPECT_EQ(snapshot.gauges[0].second, 42);
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  EXPECT_EQ(snapshot.histograms[0].name, "lat");
  EXPECT_EQ(snapshot.histograms[0].count, 1u);
}

TEST(MetricRegistryTest, ConcurrentLookupAndUpdate) {
  MetricRegistry registry;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&registry, t] {
      for (int i = 0; i < 1000; ++i) {
        registry.counter("shared")->Increment();
        registry.counter("own." + std::to_string(t))->Increment();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(registry.counter("shared")->value(), 8000);
  const MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.counters.size(), 9u);
}

TEST(MetricRegistryTest, GlobalIsSingleton) {
  EXPECT_EQ(MetricRegistry::Global(), MetricRegistry::Global());
}

// --------------------------------------------------------------- TraceSink

TEST(TraceSinkTest, RecordsAndDrainsSorted) {
  ManualClock clock(100);
  TraceSink sink(&clock);
  sink.Record(1, TracePhase::kWindowOpen, 0, 5);
  clock.Advance(50);
  sink.Record(2, TracePhase::kEmit, 0, 10);
  EXPECT_EQ(sink.size(), 2u);
  std::vector<TraceEvent> events = sink.Drain();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_LE(events[0].t_nanos, events[1].t_nanos);
  EXPECT_EQ(events[0].phase, TracePhase::kWindowOpen);
  EXPECT_EQ(events[1].phase, TracePhase::kEmit);
  EXPECT_EQ(events[1].value, 10);
  // Drain moves events out.
  EXPECT_EQ(sink.size(), 0u);
}

TEST(TraceSinkTest, CapacityBoundsRetainedEvents) {
  ManualClock clock(0);
  TraceSink sink(&clock, 16);
  for (int i = 0; i < 1000; ++i) {
    sink.Record(0, TracePhase::kEmit, i, 0);
  }
  EXPECT_LE(sink.size(), 16u);
  EXPECT_GT(sink.dropped(), 0u);
}

TEST(TraceSinkTest, MacroIsNoOpWithoutInstalledSink) {
  ASSERT_EQ(TraceSink::Active(), nullptr);
  // Must not crash; there is nowhere to record to.
  DECO_TRACE_SPAN(0, TracePhase::kEmit, 0, 0);

  ManualClock clock(0);
  TraceSink sink(&clock);
  TraceSink* previous = TraceSink::Install(&sink);
  EXPECT_EQ(previous, nullptr);
  DECO_TRACE_SPAN(3, TracePhase::kCorrect, 7, 11);
  EXPECT_EQ(TraceSink::Install(nullptr), &sink);
#if DECO_TRACE_ENABLED
  std::vector<TraceEvent> events = sink.Drain();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].node, 3u);
  EXPECT_EQ(events[0].window_index, 7u);
  EXPECT_EQ(events[0].value, 11);
#endif
}

TEST(TraceSinkTest, PhaseNamesAreStable) {
  EXPECT_EQ(TracePhaseToString(TracePhase::kWindowOpen), "window-open");
  EXPECT_EQ(TracePhaseToString(TracePhase::kPartialReceived),
            "partial-received");
  EXPECT_EQ(TracePhaseToString(TracePhase::kAssemble), "assemble");
  EXPECT_EQ(TracePhaseToString(TracePhase::kCorrect), "correct");
  EXPECT_EQ(TracePhaseToString(TracePhase::kEmit), "emit");
}

// ----------------------------------------------------------------- Sampler

TEST(SamplerTest, StartStopYieldsAtLeastTwoSamples) {
  MetricRegistry registry;
  registry.counter("x")->Add(1);
  Sampler sampler(SystemClock::Default(), nullptr, &registry,
                  5 * kNanosPerMilli);
  sampler.Start();
  sampler.Stop();
  const std::vector<TelemetrySample> samples = sampler.Samples();
  ASSERT_GE(samples.size(), 2u);
  ASSERT_EQ(samples.front().metrics.counters.size(), 1u);
  EXPECT_EQ(samples.front().metrics.counters[0].second, 1);
  EXPECT_LE(samples.front().t_nanos, samples.back().t_nanos);
  sampler.Stop();  // idempotent
  EXPECT_EQ(sampler.sample_count(), samples.size());
}

TEST(SamplerTest, SamplesFabricQueuesAndTraffic) {
  Clock* clock = SystemClock::Default();
  NetworkFabric fabric(clock, 1);
  const NodeId a = fabric.RegisterNode("a");
  const NodeId b = fabric.RegisterNode("b");
  Message msg;
  msg.src = a;
  msg.dst = b;
  msg.type = MessageType::kEventBatch;
  msg.payload.assign(64, 0);
  ASSERT_TRUE(fabric.Send(std::move(msg)).ok());

  Sampler sampler(clock, &fabric, nullptr, kNanosPerMilli);
  const TelemetrySample sample = sampler.SampleNow();
  ASSERT_EQ(sample.nodes.size(), 2u);
  EXPECT_EQ(sample.nodes[0].name, "a");
  EXPECT_GT(sample.nodes[0].bytes_sent, 0u);
  EXPECT_EQ(sample.nodes[1].queue_depth, 1u);
  EXPECT_GT(sample.nodes[1].bytes_received, 0u);
}

// ------------------------------------------------------------------ Export

TelemetryLog MakeLog() {
  TelemetryLog log;
  TelemetrySample s0;
  s0.t_nanos = 1'000'000'000;
  s0.metrics.counters = {{"root.events_emitted", 0}};
  NodeSample n0;
  n0.node = 0;
  n0.name = "root";
  n0.bytes_sent = 0;
  s0.nodes.push_back(n0);
  TelemetrySample s1 = s0;
  s1.t_nanos = 2'000'000'000;
  s1.metrics.counters = {{"root.events_emitted", 500}};
  s1.nodes[0].bytes_sent = 1000;
  s1.nodes[0].queue_depth = 3;
  log.samples = {s0, s1};
  TraceEvent span;
  span.t_nanos = 1'500'000'000;
  span.node = 0;
  span.phase = TracePhase::kEmit;
  span.window_index = 4;
  span.value = 100;
  log.spans = {span};
  return log;
}

TEST(ExportTest, JsonContainsDerivedRatesAndSpans) {
  RunReport report;
  report.scheme = "deco-async";
  report.events_processed = 500;
  const std::string json = TelemetryToJson(report, MakeLog());
  EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"scheme\": \"deco-async\""), std::string::npos);
  // Second sample: 500 events over 1 s and 1000 bytes over 1 s.
  EXPECT_NE(json.find("\"events_per_sec\": 500"), std::string::npos);
  EXPECT_NE(json.find("\"bytes_per_sec\": 1000"), std::string::npos);
  EXPECT_NE(json.find("\"queue_depth\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"phase\": \"emit\""), std::string::npos);
  EXPECT_NE(json.find("\"window\": 4"), std::string::npos);
}

TEST(ExportTest, EmptyLogIsStillWellFormed) {
  RunReport report;
  report.scheme = "central";
  const std::string json = TelemetryToJson(report, TelemetryLog{});
  EXPECT_NE(json.find("\"samples\": []"), std::string::npos);
  EXPECT_NE(json.find("\"spans\": []"), std::string::npos);
  EXPECT_NE(json.find("\"spans_dropped\": 0"), std::string::npos);
}

TEST(ExportTest, CsvRowsMatchSamplesAndSpans) {
  const TelemetryLog log = MakeLog();
  const std::string samples_path =
      ::testing::TempDir() + "/obs_test.samples.csv";
  const std::string spans_path = ::testing::TempDir() + "/obs_test.spans.csv";
  ASSERT_TRUE(WriteSamplesCsv(samples_path, log).ok());
  ASSERT_TRUE(WriteSpansCsv(spans_path, log).ok());

  auto read_lines = [](const std::string& path) {
    std::vector<std::string> lines;
    std::FILE* f = std::fopen(path.c_str(), "r");
    EXPECT_NE(f, nullptr);
    char buf[512];
    while (std::fgets(buf, sizeof(buf), f) != nullptr) lines.emplace_back(buf);
    std::fclose(f);
    return lines;
  };
  const std::vector<std::string> samples = read_lines(samples_path);
  ASSERT_EQ(samples.size(), 3u);  // header + 2 samples x 1 node
  EXPECT_NE(samples[0].find("queue_depth"), std::string::npos);
  const std::vector<std::string> spans = read_lines(spans_path);
  ASSERT_EQ(spans.size(), 2u);  // header + 1 span
  EXPECT_NE(spans[1].find("emit"), std::string::npos);
  std::remove(samples_path.c_str());
  std::remove(spans_path.c_str());
}

TEST(ExportTest, UnwritablePathIsIOError) {
  RunReport report;
  const Status status = WriteTelemetryJson(
      "/nonexistent-dir/telemetry.json", report, TelemetryLog{});
  EXPECT_TRUE(status.IsIOError());
}

TEST(ExportTest, MetricNamesAreEscaped) {
  RunReport report;
  report.scheme = "a\"b\\c";
  const std::string json = TelemetryToJson(report, TelemetryLog{});
  EXPECT_NE(json.find("\"a\\\"b\\\\c\""), std::string::npos);
}

}  // namespace
}  // namespace deco
