#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "net/fabric.h"
#include "obs/critical_path.h"
#include "obs/export.h"
#include "obs/metric_registry.h"
#include "obs/perfetto_export.h"
#include "obs/sampler.h"
#include "obs/trace.h"

namespace deco {
namespace {

// ---------------------------------------------------------------- Counter

TEST(CounterTest, AddAndIncrementAccumulate) {
  Counter c;
  EXPECT_EQ(c.value(), 0);
  c.Add(5);
  c.Increment();
  c.Add(-2);
  EXPECT_EQ(c.value(), 4);
  c.Reset();
  EXPECT_EQ(c.value(), 0);
}

TEST(CounterTest, ConcurrentAddsAreLossless) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), int64_t{kThreads} * kPerThread);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  g.Set(10);
  g.Add(-3);
  EXPECT_EQ(g.value(), 7);
  g.Set(100);
  EXPECT_EQ(g.value(), 100);
  g.Reset();
  EXPECT_EQ(g.value(), 0);
}

TEST(ShardedHistogramTest, MergedCombinesStripes) {
  ShardedHistogram h;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < 1000; ++i) h.Record(t * 1000 + i);
    });
  }
  for (std::thread& t : threads) t.join();
  const Histogram merged = h.Merged();
  EXPECT_EQ(merged.count(), 4000u);
  EXPECT_EQ(merged.min(), 0);
  EXPECT_GE(merged.max(), 3900);
  h.Reset();
  EXPECT_EQ(h.Merged().count(), 0u);
}

// --------------------------------------------------------- MetricRegistry

TEST(MetricRegistryTest, InstrumentPointersAreStable) {
  MetricRegistry registry;
  Counter* c1 = registry.counter("requests");
  Counter* c2 = registry.counter("requests");
  EXPECT_EQ(c1, c2);
  EXPECT_NE(registry.counter("other"), c1);
  // Reset zeroes values but keeps registrations and pointers valid.
  c1->Add(7);
  registry.Reset();
  EXPECT_EQ(c1->value(), 0);
  EXPECT_EQ(registry.counter("requests"), c1);
}

TEST(MetricRegistryTest, SnapshotIsNameSortedAndComplete) {
  MetricRegistry registry;
  registry.counter("b.count")->Add(2);
  registry.counter("a.count")->Add(1);
  registry.gauge("depth")->Set(42);
  registry.histogram("lat")->Record(100);
  const MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.size(), 2u);
  EXPECT_EQ(snapshot.counters[0].first, "a.count");
  EXPECT_EQ(snapshot.counters[0].second, 1);
  EXPECT_EQ(snapshot.counters[1].first, "b.count");
  ASSERT_EQ(snapshot.gauges.size(), 1u);
  EXPECT_EQ(snapshot.gauges[0].second, 42);
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  EXPECT_EQ(snapshot.histograms[0].name, "lat");
  EXPECT_EQ(snapshot.histograms[0].count, 1u);
}

TEST(MetricRegistryTest, ConcurrentLookupAndUpdate) {
  MetricRegistry registry;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&registry, t] {
      for (int i = 0; i < 1000; ++i) {
        registry.counter("shared")->Increment();
        registry.counter("own." + std::to_string(t))->Increment();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(registry.counter("shared")->value(), 8000);
  const MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.counters.size(), 9u);
}

TEST(MetricRegistryTest, GlobalIsSingleton) {
  EXPECT_EQ(MetricRegistry::Global(), MetricRegistry::Global());
}

// --------------------------------------------------------------- TraceSink

TEST(TraceSinkTest, RecordsAndDrainsSorted) {
  ManualClock clock(100);
  TraceSink sink(&clock);
  sink.Record(1, TracePhase::kWindowOpen, 0, 5);
  clock.Advance(50);
  sink.Record(2, TracePhase::kEmit, 0, 10);
  EXPECT_EQ(sink.size(), 2u);
  std::vector<TraceEvent> events = sink.Drain();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_LE(events[0].t_nanos, events[1].t_nanos);
  EXPECT_EQ(events[0].phase, TracePhase::kWindowOpen);
  EXPECT_EQ(events[1].phase, TracePhase::kEmit);
  EXPECT_EQ(events[1].value, 10);
  // Drain moves events out.
  EXPECT_EQ(sink.size(), 0u);
}

TEST(TraceSinkTest, CapacityBoundsRetainedEvents) {
  ManualClock clock(0);
  TraceSink sink(&clock, 16);
  for (int i = 0; i < 1000; ++i) {
    sink.Record(0, TracePhase::kEmit, i, 0);
  }
  EXPECT_LE(sink.size(), 16u);
  EXPECT_GT(sink.dropped(), 0u);
}

TEST(TraceSinkTest, MacroIsNoOpWithoutInstalledSink) {
  ASSERT_EQ(TraceSink::Active(), nullptr);
  // Must not crash; there is nowhere to record to.
  DECO_TRACE_SPAN(0, TracePhase::kEmit, 0, 0);

  ManualClock clock(0);
  TraceSink sink(&clock);
  TraceSink* previous = TraceSink::Install(&sink);
  EXPECT_EQ(previous, nullptr);
  DECO_TRACE_SPAN(3, TracePhase::kCorrect, 7, 11);
  EXPECT_EQ(TraceSink::Install(nullptr), &sink);
#if DECO_TRACE_ENABLED
  std::vector<TraceEvent> events = sink.Drain();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].node, 3u);
  EXPECT_EQ(events[0].window_index, 7u);
  EXPECT_EQ(events[0].value, 11);
#endif
}

#if DECO_TRACE_ENABLED
TEST(TraceSinkTest, RecordsAndDrainsHops) {
  ManualClock clock(0);
  TraceSink sink(&clock);
  Message msg;
  msg.type = MessageType::kPartialResult;
  msg.src = 2;
  msg.dst = 0;
  msg.window_index = 7;
  msg.payload.assign(10, 'x');
  msg.hop.msg_id = 99;
  msg.hop.enqueue_nanos = 100;
  msg.hop.deliver_nanos = 150;
  msg.hop.dequeue_nanos = 170;
  msg.hop.shaping_delay_nanos = 5;
  sink.RecordHop(msg);
  const std::vector<HopRecord> hops = sink.DrainHops();
  ASSERT_EQ(hops.size(), 1u);
  EXPECT_EQ(hops[0].msg_id, 99u);
  EXPECT_EQ(hops[0].type, MessageType::kPartialResult);
  EXPECT_EQ(hops[0].src, 2u);
  EXPECT_EQ(hops[0].dst, 0u);
  EXPECT_EQ(hops[0].window_index, 7u);
  EXPECT_EQ(hops[0].wire_bytes, msg.WireSize());
  EXPECT_EQ(hops[0].enqueue_nanos, 100);
  EXPECT_EQ(hops[0].deliver_nanos, 150);
  EXPECT_EQ(hops[0].dequeue_nanos, 170);
  EXPECT_EQ(hops[0].shaping_delay_nanos, 5);
  EXPECT_EQ(sink.hops_dropped(), 0u);
  // Drain moves hops out.
  EXPECT_TRUE(sink.DrainHops().empty());
}

TEST(TraceSinkTest, UnstampedMessagesRecordNoHop) {
  ManualClock clock(0);
  TraceSink sink(&clock);
  Message msg;  // hop.msg_id stays 0: sent while no sink was installed
  sink.RecordHop(msg);
  EXPECT_TRUE(sink.DrainHops().empty());
}

TEST(TraceSinkTest, HopCapacityBoundsRetainedRecords) {
  ManualClock clock(0);
  TraceSink sink(&clock, 16);
  Message msg;
  msg.hop.msg_id = 1;
  for (int i = 0; i < 1000; ++i) sink.RecordHop(msg);
  EXPECT_GT(sink.hops_dropped(), 0u);
  EXPECT_LE(sink.DrainHops().size(), 16u);
}

TEST(TraceSinkTest, InstallTogglesFabricHopStamping) {
  ASSERT_FALSE(HopStampingEnabled());
  ManualClock clock(0);
  TraceSink sink(&clock);
  TraceSink::Install(&sink);
  EXPECT_TRUE(HopStampingEnabled());
  TraceSink::Install(nullptr);
  EXPECT_FALSE(HopStampingEnabled());
}
#endif  // DECO_TRACE_ENABLED

TEST(TraceSinkTest, PhaseNamesAreStable) {
  EXPECT_EQ(TracePhaseToString(TracePhase::kWindowOpen), "window-open");
  EXPECT_EQ(TracePhaseToString(TracePhase::kPartialReceived),
            "partial-received");
  EXPECT_EQ(TracePhaseToString(TracePhase::kAssemble), "assemble");
  EXPECT_EQ(TracePhaseToString(TracePhase::kCorrect), "correct");
  EXPECT_EQ(TracePhaseToString(TracePhase::kEmit), "emit");
}

// ----------------------------------------------------------------- Sampler

TEST(SamplerTest, StartStopYieldsAtLeastTwoSamples) {
  MetricRegistry registry;
  registry.counter("x")->Add(1);
  Sampler sampler(SystemClock::Default(), nullptr, &registry,
                  5 * kNanosPerMilli);
  sampler.Start();
  sampler.Stop();
  const std::vector<TelemetrySample> samples = sampler.Samples();
  ASSERT_GE(samples.size(), 2u);
  ASSERT_EQ(samples.front().metrics.counters.size(), 1u);
  EXPECT_EQ(samples.front().metrics.counters[0].second, 1);
  EXPECT_LE(samples.front().t_nanos, samples.back().t_nanos);
  sampler.Stop();  // idempotent
  EXPECT_EQ(sampler.sample_count(), samples.size());
}

TEST(SamplerTest, SamplesFabricQueuesAndTraffic) {
  Clock* clock = SystemClock::Default();
  NetworkFabric fabric(clock, 1);
  const NodeId a = fabric.RegisterNode("a");
  const NodeId b = fabric.RegisterNode("b");
  Message msg;
  msg.src = a;
  msg.dst = b;
  msg.type = MessageType::kEventBatch;
  msg.payload.assign(64, 0);
  ASSERT_TRUE(fabric.Send(std::move(msg)).ok());

  Sampler sampler(clock, &fabric, nullptr, kNanosPerMilli);
  const TelemetrySample sample = sampler.SampleNow();
  ASSERT_EQ(sample.nodes.size(), 2u);
  EXPECT_EQ(sample.nodes[0].name, "a");
  EXPECT_GT(sample.nodes[0].bytes_sent, 0u);
  EXPECT_EQ(sample.nodes[1].queue_depth, 1u);
  EXPECT_GT(sample.nodes[1].bytes_received, 0u);
}

// ------------------------------------------------------------------ Export

TelemetryLog MakeLog() {
  TelemetryLog log;
  TelemetrySample s0;
  s0.t_nanos = 1'000'000'000;
  s0.metrics.counters = {{"root.events_emitted", 0}};
  NodeSample n0;
  n0.node = 0;
  n0.name = "root";
  n0.bytes_sent = 0;
  s0.nodes.push_back(n0);
  TelemetrySample s1 = s0;
  s1.t_nanos = 2'000'000'000;
  s1.metrics.counters = {{"root.events_emitted", 500}};
  s1.nodes[0].bytes_sent = 1000;
  s1.nodes[0].queue_depth = 3;
  log.samples = {s0, s1};
  TraceEvent span;
  span.t_nanos = 1'500'000'000;
  span.node = 0;
  span.phase = TracePhase::kEmit;
  span.window_index = 4;
  span.value = 100;
  log.spans = {span};
  return log;
}

TEST(ExportTest, JsonContainsDerivedRatesAndSpans) {
  RunReport report;
  report.scheme = "deco-async";
  report.events_processed = 500;
  const std::string json = TelemetryToJson(report, MakeLog());
  EXPECT_NE(json.find("\"schema_version\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"scheme\": \"deco-async\""), std::string::npos);
  // v4: the provenance sections are always present, empty when the run
  // collected none.
  EXPECT_NE(json.find("\"provenance_summary\""), std::string::npos);
  EXPECT_NE(json.find("\"provenance\""), std::string::npos);
  // v5: the multi-query serving sections are always present, disabled
  // and empty for single-query runs.
  EXPECT_NE(json.find("\"serving\""), std::string::npos);
  EXPECT_NE(json.find("\"queries\""), std::string::npos);
  // Second sample: 500 events over 1 s and 1000 bytes over 1 s.
  EXPECT_NE(json.find("\"events_per_sec\": 500"), std::string::npos);
  EXPECT_NE(json.find("\"bytes_per_sec\": 1000"), std::string::npos);
  EXPECT_NE(json.find("\"queue_depth\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"phase\": \"emit\""), std::string::npos);
  EXPECT_NE(json.find("\"window\": 4"), std::string::npos);
}

TEST(ExportTest, FirstSampleRatesAreNullNotZero) {
  // Schema v2: the first snapshot has no interval to rate over, so its
  // derived rates must be absent (JSON null), not a misleading 0.
  RunReport report;
  const std::string json = TelemetryToJson(report, MakeLog());
  EXPECT_NE(json.find("\"events_per_sec\": null"), std::string::npos);
  EXPECT_NE(json.find("\"bytes_per_sec\": null"), std::string::npos);
}

TEST(ExportTest, SchemaV3KeepsV1AndV2Fields) {
  // Backward compatibility: every v1/v2 consumer key survives the v3 bump,
  // and the new cpu_breakdown section is always present.
  RunReport report;
  report.scheme = "deco-sync";
  const std::string json = TelemetryToJson(report, MakeLog());
  for (const char* key :
       {"\"scheme\"", "\"report\"", "\"events_processed\"",
        "\"wall_seconds\"", "\"samples\"", "\"counters\"", "\"gauges\"",
        "\"histograms\"", "\"nodes\"", "\"spans\"", "\"spans_dropped\"",
        "\"queue_depth\"", "\"messages_sent\"", "\"bytes_sent\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing v1 key " << key;
  }
  for (const char* key :
       {"\"hop_count\"", "\"hops_dropped\"", "\"latency_breakdown\"",
        "\"sent_by_type\"", "\"msg_id\"", "\"emit_spans\"",
        "\"windows_attributed\"", "\"unattributed\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing v2 key " << key;
  }
  for (const char* key : {"\"cpu_breakdown\"", "\"alloc_counted\"",
                          "\"threads\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing v3 key " << key;
  }
}

TEST(ExportTest, SchemaV3ParsesWithV2Reader) {
  // A v2-era consumer reads the document by scanning for its known
  // `"key": value` pairs and ignoring unknown keys (the pattern
  // tools/check_perfetto_trace.py and the CI smoke test use). Simulate
  // one: every v2 extraction against a v3 document must still find its key
  // exactly once at top level and parse the value that follows.
  RunReport report;
  report.scheme = "deco-async";
  report.events_processed = 500;
  report.windows_emitted = 7;
  const std::string json = TelemetryToJson(report, MakeLog());

  const auto v2_read_uint = [&](const std::string& key) -> long long {
    const std::string needle = "\"" + key + "\": ";
    const size_t pos = json.find(needle);
    EXPECT_NE(pos, std::string::npos) << "v2 reader lost key " << key;
    if (pos == std::string::npos) return -1;
    return std::stoll(json.substr(pos + needle.size()));
  };
  EXPECT_EQ(v2_read_uint("events_processed"), 500);
  EXPECT_EQ(v2_read_uint("windows_emitted"), 7);
  EXPECT_EQ(v2_read_uint("spans_dropped"), 0);
  EXPECT_EQ(v2_read_uint("hop_count"), 0);

  // The unprofiled default must be inert-but-present: a v3 reader needs no
  // existence check, and a v2 reader sees only an unknown key.
  EXPECT_NE(json.find("\"cpu_breakdown\": {\"enabled\":false,"
                      "\"alloc_counted\":false,\"threads\":[]}"),
            std::string::npos);
}

TEST(ExportTest, JsonReportsPerTypeTraffic) {
  TelemetryLog log = MakeLog();
  NodeSample& node = log.samples[1].nodes[0];
  node.messages_sent_by_type[static_cast<size_t>(
      MessageType::kPartialResult)] = 3;
  node.bytes_sent_by_type[static_cast<size_t>(
      MessageType::kPartialResult)] = 321;
  const std::string json = TelemetryToJson(RunReport{}, log);
  EXPECT_NE(json.find("\"partial-result\": {\"messages\": 3, "
                      "\"bytes\": 321}"),
            std::string::npos);
}

TEST(ExportTest, EmptyLogIsStillWellFormed) {
  RunReport report;
  report.scheme = "central";
  const std::string json = TelemetryToJson(report, TelemetryLog{});
  EXPECT_NE(json.find("\"samples\": []"), std::string::npos);
  EXPECT_NE(json.find("\"spans\": []"), std::string::npos);
  EXPECT_NE(json.find("\"spans_dropped\": 0"), std::string::npos);
}

TEST(ExportTest, CsvRowsMatchSamplesAndSpans) {
  const TelemetryLog log = MakeLog();
  const std::string samples_path =
      ::testing::TempDir() + "/obs_test.samples.csv";
  const std::string spans_path = ::testing::TempDir() + "/obs_test.spans.csv";
  ASSERT_TRUE(WriteSamplesCsv(samples_path, log).ok());
  ASSERT_TRUE(WriteSpansCsv(spans_path, log).ok());

  auto read_lines = [](const std::string& path) {
    std::vector<std::string> lines;
    std::FILE* f = std::fopen(path.c_str(), "r");
    EXPECT_NE(f, nullptr);
    char buf[512];
    while (std::fgets(buf, sizeof(buf), f) != nullptr) lines.emplace_back(buf);
    std::fclose(f);
    return lines;
  };
  const std::vector<std::string> samples = read_lines(samples_path);
  ASSERT_EQ(samples.size(), 3u);  // header + 2 samples x 1 node
  EXPECT_NE(samples[0].find("queue_depth"), std::string::npos);
  const std::vector<std::string> spans = read_lines(spans_path);
  ASSERT_EQ(spans.size(), 2u);  // header + 1 span
  EXPECT_NE(spans[1].find("emit"), std::string::npos);
  std::remove(samples_path.c_str());
  std::remove(spans_path.c_str());
}

namespace {
std::vector<std::string> ReadLines(const std::string& path) {
  std::vector<std::string> lines;
  std::FILE* f = std::fopen(path.c_str(), "r");
  EXPECT_NE(f, nullptr);
  if (f == nullptr) return lines;
  char buf[512];
  while (std::fgets(buf, sizeof(buf), f) != nullptr) {
    std::string line(buf);
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
      line.pop_back();
    }
    lines.push_back(line);
  }
  std::fclose(f);
  return lines;
}
}  // namespace

TEST(ExportTest, SamplesCsvRoundTripsHeaderRowsAndRates) {
  const TelemetryLog log = MakeLog();
  const std::string path = ::testing::TempDir() + "/obs_rt.samples.csv";
  ASSERT_TRUE(WriteSamplesCsv(path, log).ok());
  const std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 1 + log.samples.size() * log.samples[0].nodes.size());
  EXPECT_EQ(lines[0],
            "t_ms,node,name,queue_depth,messages_sent,bytes_sent,"
            "messages_received,bytes_received,bytes_per_sec");
  // First sample: the derived-rate field is empty, not 0.
  EXPECT_EQ(lines[1].back(), ',');
  // Second sample: 1000 bytes over the 1 s gap.
  EXPECT_NE(lines[2].find(",1000"), std::string::npos);
  // Row fields line up with the header column count.
  for (size_t i = 1; i < lines.size(); ++i) {
    const size_t commas =
        static_cast<size_t>(std::count(lines[i].begin(), lines[i].end(), ','));
    EXPECT_EQ(commas, 8u) << "row " << i << ": " << lines[i];
  }
  std::remove(path.c_str());
}

TEST(ExportTest, SpansCsvHasMsgIdColumn) {
  TelemetryLog log = MakeLog();
  log.spans[0].msg_id = 77;
  const std::string path = ::testing::TempDir() + "/obs_rt.spans.csv";
  ASSERT_TRUE(WriteSpansCsv(path, log).ok());
  const std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "t_ms,node,phase,window,value,msg_id");
  EXPECT_NE(lines[1].find("emit,4,100,77"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ExportTest, CsvEscapesNodeNames) {
  // RFC 4180: fields containing commas or quotes are quoted, with embedded
  // quotes doubled — a node named with both must survive one CSV row.
  TelemetryLog log = MakeLog();
  log.samples[0].nodes[0].name = "edge \"a\", rack 1";
  log.samples.resize(1);
  const std::string path = ::testing::TempDir() + "/obs_escape.samples.csv";
  ASSERT_TRUE(WriteSamplesCsv(path, log).ok());
  const std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[1].find("\"edge \"\"a\"\", rack 1\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(ExportTest, UnwritablePathIsIOError) {
  RunReport report;
  const Status status = WriteTelemetryJson(
      "/nonexistent-dir/telemetry.json", report, TelemetryLog{});
  EXPECT_TRUE(status.IsIOError());
}

TEST(ExportTest, MetricNamesAreEscaped) {
  RunReport report;
  report.scheme = "a\"b\\c";
  const std::string json = TelemetryToJson(report, TelemetryLog{});
  EXPECT_NE(json.find("\"a\\\"b\\\\c\""), std::string::npos);
}

// ----------------------------------------------------------- CriticalPath

TraceEvent MakeSpan(TimeNanos t, NodeId node, TracePhase phase,
                    uint64_t window, uint64_t msg_id = 0) {
  TraceEvent span;
  span.t_nanos = t;
  span.node = node;
  span.phase = phase;
  span.window_index = window;
  span.msg_id = msg_id;
  return span;
}

HopRecord MakeHop(uint64_t msg_id, MessageType type, NodeId src, NodeId dst,
                  uint64_t window, TimeNanos enqueue, TimeNanos shaping,
                  TimeNanos deliver, TimeNanos dequeue) {
  HopRecord hop;
  hop.msg_id = msg_id;
  hop.type = type;
  hop.src = src;
  hop.dst = dst;
  hop.window_index = window;
  hop.enqueue_nanos = enqueue;
  hop.shaping_delay_nanos = shaping;
  hop.deliver_nanos = deliver;
  hop.dequeue_nanos = dequeue;
  return hop;
}

TEST(CriticalPathTest, ExactMatchTelescopesToTotal) {
  // Local node 1 opens window 3 at t=1000 and ships the critical partial at
  // t=5000; the root emits at t=7000. Every gap lands in its component and
  // the components sum exactly to emit - open.
  TelemetryLog log;
  log.spans = {MakeSpan(1000, 1, TracePhase::kWindowOpen, 3),
               MakeSpan(7000, 0, TracePhase::kEmit, 3, /*msg_id=*/42)};
  log.hops = {MakeHop(42, MessageType::kPartialResult, 1, 0, 3,
                      /*enqueue=*/5000, /*shaping=*/200, /*deliver=*/6000,
                      /*dequeue=*/6500)};

  const LatencyAttribution a = AttributeWindowLatency(log);
  EXPECT_EQ(a.emit_spans, 1u);
  EXPECT_EQ(a.unattributed, 0u);
  ASSERT_EQ(a.windows.size(), 1u);
  const WindowAttribution& w = a.windows[0];
  EXPECT_TRUE(w.exact);
  EXPECT_FALSE(w.corrected);
  EXPECT_EQ(w.critical_src, 1u);
  EXPECT_EQ(w.msg_id, 42u);
  const LatencyComponents& c = w.components;
  EXPECT_DOUBLE_EQ(c.local_compute_nanos, 4000.0);  // 1000 -> 5000
  EXPECT_DOUBLE_EQ(c.correction_nanos, 0.0);
  EXPECT_DOUBLE_EQ(c.shaping_nanos, 200.0);      // 5000 -> 5200
  EXPECT_DOUBLE_EQ(c.link_nanos, 800.0);         // 5200 -> 6000
  EXPECT_DOUBLE_EQ(c.queue_nanos, 500.0);        // 6000 -> 6500
  EXPECT_DOUBLE_EQ(c.root_merge_nanos, 500.0);   // 6500 -> 7000
  EXPECT_DOUBLE_EQ(c.total_nanos, 6000.0);       // 1000 -> 7000
  EXPECT_DOUBLE_EQ(c.local_compute_nanos + c.correction_nanos +
                       c.shaping_nanos + c.link_nanos + c.queue_nanos +
                       c.root_merge_nanos,
                   c.total_nanos);
}

TEST(CriticalPathTest, CorrectionResultChargesCorrectionComponent) {
  // The critical hop is a correction result: the interval since the root's
  // kCorrect span is the round-trip, charged to `correction`, not to the
  // source's local compute.
  TelemetryLog log;
  log.spans = {MakeSpan(1000, 2, TracePhase::kWindowOpen, 9),
               MakeSpan(4000, 0, TracePhase::kCorrect, 9),
               MakeSpan(9000, 0, TracePhase::kEmit, 9, /*msg_id=*/7)};
  log.hops = {MakeHop(7, MessageType::kCorrectionResult, 2, 0, 9,
                      /*enqueue=*/6000, /*shaping=*/0, /*deliver=*/7000,
                      /*dequeue=*/8000)};

  const LatencyAttribution a = AttributeWindowLatency(log);
  ASSERT_EQ(a.windows.size(), 1u);
  const WindowAttribution& w = a.windows[0];
  EXPECT_TRUE(w.corrected);
  const LatencyComponents& c = w.components;
  EXPECT_DOUBLE_EQ(c.correction_nanos, 2000.0);   // 4000 -> 6000
  EXPECT_DOUBLE_EQ(c.local_compute_nanos, 0.0);
  EXPECT_DOUBLE_EQ(c.link_nanos, 1000.0);         // 6000 -> 7000
  EXPECT_DOUBLE_EQ(c.queue_nanos, 1000.0);        // 7000 -> 8000
  EXPECT_DOUBLE_EQ(c.root_merge_nanos, 1000.0);   // 8000 -> 9000
  EXPECT_DOUBLE_EQ(c.total_nanos, 5000.0);        // 4000 -> 9000
}

TEST(CriticalPathTest, MissingMsgIdFallsBackToLatestArrival) {
  // An emit span without a causal id (e.g. a baseline without the plumbing)
  // is matched to the last message the emitting node dequeued before it.
  TelemetryLog log;
  log.spans = {MakeSpan(9000, 0, TracePhase::kEmit, 1)};
  log.hops = {MakeHop(5, MessageType::kEventBatch, 1, 0, 1, 1000, 0, 2000,
                      3000),
              MakeHop(6, MessageType::kEventBatch, 2, 0, 1, 4000, 0, 5000,
                      6000)};

  const LatencyAttribution a = AttributeWindowLatency(log);
  ASSERT_EQ(a.windows.size(), 1u);
  EXPECT_FALSE(a.windows[0].exact);
  EXPECT_EQ(a.windows[0].msg_id, 0u);
  EXPECT_EQ(a.windows[0].critical_src, 2u);  // hop 6 arrived last
  // No window-open span: anchored at the hop's enqueue.
  EXPECT_DOUBLE_EQ(a.windows[0].components.local_compute_nanos, 0.0);
  EXPECT_DOUBLE_EQ(a.windows[0].components.total_nanos, 5000.0);
}

TEST(CriticalPathTest, EmitWithoutHopsIsUnattributed) {
  TelemetryLog log;
  log.spans = {MakeSpan(9000, 0, TracePhase::kEmit, 0)};
  const LatencyAttribution a = AttributeWindowLatency(log);
  EXPECT_EQ(a.emit_spans, 1u);
  EXPECT_EQ(a.unattributed, 1u);
  EXPECT_TRUE(a.windows.empty());
}

TEST(CriticalPathTest, FormatMentionsEveryComponent) {
  TelemetryLog log;
  log.spans = {MakeSpan(1000, 1, TracePhase::kWindowOpen, 0),
               MakeSpan(5000, 0, TracePhase::kEmit, 0, 1)};
  log.hops = {MakeHop(1, MessageType::kPartialResult, 1, 0, 0, 2000, 0,
                      3000, 4000)};
  const std::string text =
      FormatLatencyBreakdown(AttributeWindowLatency(log));
  for (const char* name : {"local_compute", "correction", "shaping", "link",
                           "queue", "root_merge", "mean_total"}) {
    EXPECT_NE(text.find(name), std::string::npos) << name;
  }
}

// --------------------------------------------------------- PerfettoExport

TEST(PerfettoExportTest, EmitsChromeTraceEventStructure) {
  TelemetryLog log = MakeLog();
  log.spans.push_back(
      MakeSpan(1'600'000'000, 0, TracePhase::kWindowOpen, 4));
  log.hops = {MakeHop(3, MessageType::kPartialResult, 0, 0, 4,
                      1'400'000'000, 0, 1'450'000'000, 1'500'000'000)};
  const std::string json = PerfettoTraceJson(log);
  EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // One process (track) per node, named from the sampler's node table.
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"root\""), std::string::npos);
  // Window lifetimes and hops are async begin/end pairs; spans instants.
  EXPECT_NE(json.find("\"ph\": \"b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"e\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\": \"window\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\": \"net\""), std::string::npos);
}

TEST(PerfettoExportTest, WritesLoadableFile) {
  const std::string path = ::testing::TempDir() + "/obs_test.trace.json";
  ASSERT_TRUE(WritePerfettoTrace(path, MakeLog()).ok());
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_TRUE(
      WritePerfettoTrace("/nonexistent-dir/t.json", MakeLog()).IsIOError());
}

}  // namespace
}  // namespace deco
