#include <gtest/gtest.h>

#include "metrics/correctness.h"
#include "metrics/histogram.h"
#include "metrics/report.h"

namespace deco {
namespace {

// --------------------------------------------------------------- Histogram

TEST(HistogramTest, EmptyIsZeroes) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.Percentile(0.5), 0);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Record(1234);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 1234);
  EXPECT_EQ(h.max(), 1234);
  EXPECT_DOUBLE_EQ(h.mean(), 1234.0);
  EXPECT_EQ(h.Percentile(0.0), 1234);
  EXPECT_EQ(h.Percentile(1.0), 1234);
}

TEST(HistogramTest, SmallValuesAreExact) {
  Histogram h;
  for (int i = 0; i < 32; ++i) h.Record(i);
  EXPECT_EQ(h.Percentile(0.0), 0);
  EXPECT_EQ(h.Percentile(1.0), 31);
  // Sub-32 values land in exact unit buckets.
  EXPECT_EQ(h.Percentile(0.5), 15);
}

TEST(HistogramTest, PercentilesHaveBoundedRelativeError) {
  Histogram h;
  for (int64_t v = 1; v <= 1'000'000; v += 37) h.Record(v);
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    const double expected = q * 1'000'000;
    const double got = static_cast<double>(h.Percentile(q));
    EXPECT_NEAR(got, expected, expected * 0.05) << "q=" << q;
  }
}

TEST(HistogramTest, NegativeClampsToZero) {
  Histogram h;
  h.Record(-100);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.count(), 1u);
}

TEST(HistogramTest, RecordManyWeightsCorrectly) {
  Histogram h;
  h.RecordMany(10, 99);
  h.RecordMany(1'000'000, 1);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_NEAR(h.mean(), (99 * 10 + 1'000'000) / 100.0, 1.0);
  EXPECT_EQ(h.Percentile(0.5), 10);
}

TEST(HistogramTest, MergeEqualsCombinedRecording) {
  Histogram a, b, combined;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = i * i % 7919;
    if (i % 2 == 0) {
      a.Record(v);
    } else {
      b.Record(v);
    }
    combined.Record(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_DOUBLE_EQ(a.mean(), combined.mean());
  EXPECT_EQ(a.min(), combined.min());
  EXPECT_EQ(a.max(), combined.max());
  for (double q : {0.25, 0.5, 0.75, 0.95}) {
    EXPECT_EQ(a.Percentile(q), combined.Percentile(q));
  }
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Record(5);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(0.5), 0);
}

TEST(HistogramTest, EmptyPercentileBoundariesAreZero) {
  Histogram h;
  EXPECT_EQ(h.Percentile(0.0), 0);
  EXPECT_EQ(h.Percentile(0.99), 0);
  EXPECT_EQ(h.Percentile(1.0), 0);
}

TEST(HistogramTest, MergeDisjointOctaves) {
  // `a` only holds sub-32 exact values, `b` only holds values dozens of
  // octaves higher; merging must keep both populations intact.
  Histogram a, b;
  for (int64_t v = 1; v <= 8; ++v) a.Record(v);
  const int64_t big = int64_t{1} << 40;
  for (int64_t v = 0; v < 8; ++v) b.Record(big + v * 1024);
  a.Merge(b);
  EXPECT_EQ(a.count(), 16u);
  EXPECT_EQ(a.min(), 1);
  EXPECT_GE(a.max(), big);
  EXPECT_LE(a.Percentile(0.25), 8);               // low half stays low
  EXPECT_GE(a.Percentile(0.95), big / 2);         // high half stays high
  EXPECT_NEAR(a.mean(), (36.0 + 8.0 * big + 28 * 1024) / 16.0,
              static_cast<double>(big) * 0.01);
}

TEST(HistogramTest, RecordManyNearInt64MaxDoesNotOverflow) {
  Histogram h;
  h.RecordMany(INT64_MAX, 3);
  h.RecordMany(INT64_MAX - 1, 2);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.max(), INT64_MAX);
  // The sum is tracked as a double: no wrap-around, mean stays near the
  // recorded magnitude.
  EXPECT_NEAR(h.mean(), static_cast<double>(INT64_MAX),
              static_cast<double>(INT64_MAX) * 1e-9);
  EXPECT_GT(h.Percentile(0.5), INT64_MAX / 2);
}

TEST(HistogramTest, ResetThenReuseMatchesFreshHistogram) {
  Histogram reused, fresh;
  for (int64_t v = 1; v <= 1000; ++v) reused.Record(v * 17);
  reused.Reset();
  for (int64_t v = 1; v <= 100; ++v) {
    reused.Record(v);
    fresh.Record(v);
  }
  EXPECT_EQ(reused.count(), fresh.count());
  EXPECT_DOUBLE_EQ(reused.mean(), fresh.mean());
  EXPECT_EQ(reused.min(), fresh.min());
  EXPECT_EQ(reused.max(), fresh.max());
  for (double q : {0.1, 0.5, 0.9}) {
    EXPECT_EQ(reused.Percentile(q), fresh.Percentile(q));
  }
}

TEST(HistogramTest, HugeValuesDoNotOverflowBuckets) {
  Histogram h;
  h.Record(INT64_MAX);
  h.Record(INT64_MAX / 2);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.max(), INT64_MAX);
}

// ---------------------------------------------------------- ConsumptionLog

TEST(ConsumptionLogTest, CumulativeTracking) {
  ConsumptionLog log(2);
  log.AddWindow({3, 7});
  log.AddWindow({5, 5});
  EXPECT_EQ(log.num_windows(), 2u);
  EXPECT_EQ(log.CumulativeBefore(0, 0), 0u);
  EXPECT_EQ(log.CumulativeBefore(1, 0), 3u);
  EXPECT_EQ(log.CumulativeBefore(1, 1), 7u);
  EXPECT_EQ(log.TotalEvents(), 20u);
}

TEST(CorrectnessTest, IdenticalLogsAreFullyCorrect) {
  ConsumptionLog truth(2), test(2);
  for (int w = 0; w < 10; ++w) {
    truth.AddWindow({10, 20});
    test.AddWindow({10, 20});
  }
  const CorrectnessReport report = CompareConsumption(truth, test);
  EXPECT_EQ(report.windows_compared, 10u);
  EXPECT_EQ(report.truth_events, 300u);
  EXPECT_EQ(report.overlapping_events, 300u);
  EXPECT_DOUBLE_EQ(report.correctness, 1.0);
}

TEST(CorrectnessTest, ShiftedBoundariesLoseOverlap) {
  // Truth alternates 10/20 vs 20/10; the test splits evenly: each window
  // of the test overlaps the truth by 10+10=20 of 30 events.
  ConsumptionLog truth(2), test(2);
  truth.AddWindow({10, 20});
  test.AddWindow({15, 15});
  const CorrectnessReport report = CompareConsumption(truth, test);
  EXPECT_EQ(report.truth_events, 30u);
  EXPECT_EQ(report.overlapping_events, 25u);  // min(10,15) + min(20,15)
}

TEST(CorrectnessTest, DriftAccumulatesAcrossWindows) {
  ConsumptionLog truth(1), test(1);
  // Truth windows consume 10 each; the test consumes 12 each, so window w
  // of the test covers [12w, 12w+12) vs truth's [10w, 10w+10).
  for (int w = 0; w < 5; ++w) {
    truth.AddWindow({10});
    test.AddWindow({12});
  }
  const CorrectnessReport report = CompareConsumption(truth, test);
  // Window 0: overlap 10; window 1: truth [10,20) vs test [12,24) -> 8;
  // window 2: [20,30) vs [24,36) -> 6; then 4, 2.
  EXPECT_EQ(report.overlapping_events, 10u + 8 + 6 + 4 + 2);
  EXPECT_LT(report.correctness, 1.0);
}

TEST(CorrectnessTest, ComparesOnlyCommonPrefix) {
  ConsumptionLog truth(1), test(1);
  truth.AddWindow({10});
  truth.AddWindow({10});
  test.AddWindow({10});
  const CorrectnessReport report = CompareConsumption(truth, test);
  EXPECT_EQ(report.windows_compared, 1u);
  EXPECT_EQ(report.truth_events, 10u);
}

TEST(CorrectnessTest, EmptyLogsAreVacuouslyCorrect) {
  ConsumptionLog truth(3), test(3);
  const CorrectnessReport report = CompareConsumption(truth, test);
  EXPECT_DOUBLE_EQ(report.correctness, 1.0);
  EXPECT_EQ(report.windows_compared, 0u);
}

// ----------------------------------------------------------------- Report

TEST(RunReportTest, SummaryAndBytesPerEvent) {
  RunReport report;
  report.scheme = "deco-sync";
  report.events_processed = 1000;
  report.network.total_bytes = 5000;
  report.windows_emitted = 10;
  report.latency.Record(2'000'000);
  EXPECT_DOUBLE_EQ(report.BytesPerEvent(), 5.0);
  const std::string summary = report.Summary();
  EXPECT_NE(summary.find("deco-sync"), std::string::npos);
  EXPECT_NE(summary.find("windows=10"), std::string::npos);
}

TEST(RunReportTest, BytesPerEventZeroWhenNoEvents) {
  RunReport report;
  report.network.total_bytes = 100;
  EXPECT_DOUBLE_EQ(report.BytesPerEvent(), 0.0);
}

}  // namespace
}  // namespace deco
