#include "obs/provenance.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "harness/experiment.h"
#include "harness/oracle.h"

namespace deco {
namespace {

// Unit tests of the ProvenanceTracker bookkeeping contract (DESIGN.md
// §10) — `expected == received + missing` on every record, state logs
// that end in `final`, EOS waivers, correction discards — plus
// integration coverage of the post-run accuracy estimator: on every
// simulated run the drop/staleness/approx components must sum to the
// oracle-measured error per window (the ISSUE 6 acceptance bound is 1%).

TEST(ProvenanceTrackerTest, CleanWindowBalancesAndFinalizes) {
  ProvenanceTracker tracker(/*num_nodes=*/2, /*regions_per_window=*/3);
  tracker.set_now_nanos(100);
  for (size_t node = 0; node < 2; ++node) {
    tracker.OnRegion(0, node, ProvRegion::kSlice, 0.0);
    tracker.OnRegion(0, node, ProvRegion::kFront, 0.0);
    tracker.OnRegion(0, node, ProvRegion::kEnd, 0.0);
  }
  tracker.set_now_nanos(250);
  tracker.OnWindowEmitted(/*protocol_window=*/0, /*report_index=*/0,
                          /*corrected=*/false, /*emit_nanos=*/250);

  const ProvenanceLog log = tracker.TakeLog();
  ASSERT_EQ(log.windows.size(), 1u);
  const WindowProvenance& w = log.windows[0];
  EXPECT_EQ(w.expected_total, 6u);
  EXPECT_EQ(w.received_total, 6u);
  EXPECT_EQ(w.missing_total, 0u);
  EXPECT_FALSE(w.corrected);
  EXPECT_EQ(w.emit_nanos, 250);
  ASSERT_EQ(w.parts.size(), 2u);
  for (const PartialProvenance& p : w.parts) {
    EXPECT_EQ(p.expected, p.received + p.missing);
  }
  ASSERT_EQ(w.transitions.size(), 2u);
  EXPECT_EQ(w.transitions.front().state, ProvState::kProvisional);
  EXPECT_EQ(w.transitions.back().state, ProvState::kFinal);
}

TEST(ProvenanceTrackerTest, MissingRegionsAreCounted) {
  ProvenanceTracker tracker(2, 2);
  tracker.OnRegion(0, 0, ProvRegion::kSlice, 0.0);
  tracker.OnRegion(0, 0, ProvRegion::kEnd, 0.0);
  tracker.OnRegion(0, 1, ProvRegion::kSlice, 0.0);  // node 1 lost its end
  tracker.OnWindowEmitted(0, 0, false, 10);

  const ProvenanceLog log = tracker.TakeLog();
  ASSERT_EQ(log.windows.size(), 1u);
  EXPECT_EQ(log.windows[0].missing_total, 1u);
  EXPECT_EQ(log.windows[0].expected_total,
            log.windows[0].received_total + log.windows[0].missing_total);
  EXPECT_EQ(log.windows[0].parts[1].missing, 1u);
}

TEST(ProvenanceTrackerTest, EosWaivesUnshippedRegions) {
  ProvenanceTracker tracker(2, 2);
  tracker.OnRegion(0, 0, ProvRegion::kSlice, 0.0);
  tracker.OnRegion(0, 0, ProvRegion::kEnd, 0.0);
  // Node 1 announced end-of-stream before contributing to this window:
  // it owes nothing, so nothing of its is missing.
  tracker.OnEos(1);
  tracker.OnWindowEmitted(0, 0, false, 10);

  const ProvenanceLog log = tracker.TakeLog();
  ASSERT_EQ(log.windows.size(), 1u);
  EXPECT_EQ(log.windows[0].missing_total, 0u);
  EXPECT_EQ(log.windows[0].parts[1].expected, 0u);
}

TEST(ProvenanceTrackerTest, CorrectionDiscardsAndTrailsAreRecorded) {
  ProvenanceTracker tracker(2, 2);
  tracker.set_now_nanos(10);
  for (size_t node = 0; node < 2; ++node) {
    tracker.OnRegion(3, node, ProvRegion::kSlice, 0.0);
    tracker.OnRegion(3, node, ProvRegion::kEnd, 0.0);
  }
  tracker.set_now_nanos(20);
  tracker.OnCorrectionBegin(3);
  tracker.OnCorrectionSolicit(3, 0);
  tracker.OnCorrectionSolicit(3, 1);
  tracker.set_now_nanos(30);
  tracker.OnCorrectionResponse(3, 0, 0.0);
  tracker.OnCorrectionResponse(3, 1, 0.0);
  tracker.OnWindowEmitted(3, 3, /*corrected=*/true, 40);

  const ProvenanceLog log = tracker.TakeLog();
  ASSERT_EQ(log.windows.size(), 1u);
  const WindowProvenance& w = log.windows[0];
  EXPECT_TRUE(w.corrected);
  EXPECT_EQ(w.correction_rounds, 1u);
  // The provisional regions were discarded by the rollback; the record
  // balances on the correction responses alone.
  EXPECT_EQ(w.expected_total, 2u);
  EXPECT_EQ(w.received_total, 2u);
  EXPECT_EQ(w.missing_total, 0u);
  for (const PartialProvenance& p : w.parts) {
    EXPECT_EQ(p.discarded, 2u);
  }
  ASSERT_EQ(w.transitions.size(), 4u);
  EXPECT_EQ(w.transitions[0].state, ProvState::kProvisional);
  EXPECT_EQ(w.transitions[1].state, ProvState::kCorrecting);
  EXPECT_EQ(w.transitions[2].state, ProvState::kCorrected);
  EXPECT_EQ(w.transitions[3].state, ProvState::kFinal);
}

TEST(ProvenanceTrackerTest, DuplicatesIncarnationsAndWindowCap) {
  ProvenanceTracker tracker(1, 1);
  tracker.set_max_windows(1);
  tracker.OnIncarnation(0, 2);
  tracker.OnRegion(0, 0, ProvRegion::kSlice, 0.0);
  tracker.OnDuplicate(0, 0, ProvRegion::kSlice);
  tracker.OnWindowEmitted(0, 0, false, 10);
  tracker.OnRegion(1, 0, ProvRegion::kSlice, 0.0);
  tracker.OnWindowEmitted(1, 1, false, 20);  // over the cap: dropped

  const ProvenanceLog log = tracker.TakeLog();
  ASSERT_EQ(log.windows.size(), 1u);
  EXPECT_EQ(log.windows_dropped, 1u);
  EXPECT_EQ(log.windows[0].duplicate_total, 1u);
  EXPECT_EQ(log.windows[0].parts[0].incarnation, 2u);
}

TEST(ProvenanceTrackerTest, SynthesizedWindowCoversLiveNodesOnly) {
  ProvenanceTracker tracker(3, 1);
  tracker.OnSynthesizedWindow(/*report_index=*/7, {true, false, true},
                              /*create_mean=*/100.0, /*emit_nanos=*/500);
  const ProvenanceLog log = tracker.TakeLog();
  ASSERT_EQ(log.windows.size(), 1u);
  const WindowProvenance& w = log.windows[0];
  EXPECT_EQ(w.window_index, 7u);
  ASSERT_EQ(w.parts.size(), 2u);
  EXPECT_EQ(w.parts[0].node, 0u);
  EXPECT_EQ(w.parts[1].node, 2u);
  EXPECT_EQ(w.expected_total, w.received_total);
  EXPECT_DOUBLE_EQ(w.parts[0].MeanStalenessNanos(), 400.0);
}

TEST(ProvenanceSummaryTest, AggregatesRecordsAndAccuracy) {
  ProvenanceLog log;
  WindowProvenance w;
  w.corrected = true;
  w.correction_rounds = 2;
  w.expected_total = 6;
  w.received_total = 5;
  w.missing_total = 1;
  log.windows.push_back(w);
  WindowAccuracy acc;
  acc.observed_error = -4.0;
  acc.drop_error = -3.0;
  acc.staleness_error = -1.0;
  log.accuracy.push_back(acc);

  const ProvenanceSummary summary = ComputeProvenanceSummary(log);
  EXPECT_TRUE(summary.enabled);
  EXPECT_EQ(summary.windows_tracked, 1u);
  EXPECT_EQ(summary.windows_corrected, 1u);
  EXPECT_EQ(summary.correction_rounds, 2u);
  EXPECT_EQ(summary.partials_expected, 6u);
  EXPECT_EQ(summary.partials_missing, 1u);
  EXPECT_EQ(summary.windows_estimated, 1u);
  EXPECT_DOUBLE_EQ(summary.mean_abs_error, 4.0);
  EXPECT_DOUBLE_EQ(summary.max_abs_error, 4.0);
  EXPECT_DOUBLE_EQ(summary.mean_abs_drop_error, 3.0);
  EXPECT_DOUBLE_EQ(summary.mean_abs_staleness_error, 1.0);
}

TEST(ProvenanceJsonTest, CarriesRecordsAndAccuracySections) {
  ProvenanceLog log;
  WindowProvenance w;
  w.window_index = 4;
  w.corrected = true;
  w.transitions.push_back(ProvTransition{ProvState::kProvisional, 1, 0});
  w.transitions.push_back(ProvTransition{ProvState::kFinal, 2, 0});
  PartialProvenance part;
  part.node = 1;
  part.incarnation = 3;
  part.expected = 2;
  part.received = 2;
  w.parts.push_back(part);
  log.windows.push_back(w);
  WindowAccuracy acc;
  acc.window_index = 4;
  acc.observed_error = 1.5;
  log.accuracy.push_back(acc);

  const std::string json = ProvenanceJson(log);
  EXPECT_NE(json.find("\"windows_tracked\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"corrected\": true"), std::string::npos);
  EXPECT_NE(json.find("\"incarnation\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"state\": \"provisional\""), std::string::npos);
  EXPECT_NE(json.find("\"observed_error\": 1.5"), std::string::npos);
}

// Integration: one small simulated run per scheme; the attribution
// components must sum to the oracle-measured error on every window, and
// every provenance record must balance.
class AccuracyAttributionTest : public ::testing::TestWithParam<Scheme> {};

TEST_P(AccuracyAttributionTest, ComponentsSumToObservedError) {
  ExperimentConfig config;
  config.sim = true;
  config.scheme = GetParam();
  config.query.window = WindowSpec::CountTumbling(2000);
  config.num_locals = 3;
  config.streams_per_local = 2;
  config.events_per_local = 20'000;
  config.base_rate = 50'000;
  config.rate_change = 0.05;
  config.batch_size = 512;
  config.seed = 7;

  ProvenanceLog log;
  config.provenance.enabled = true;
  config.provenance.sink = &log;

  auto report = RunExperiment(config);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  ASSERT_FALSE(log.windows.empty());
  for (const WindowProvenance& w : log.windows) {
    EXPECT_EQ(w.expected_total, w.received_total + w.missing_total);
    for (const PartialProvenance& p : w.parts) {
      EXPECT_EQ(p.expected, p.received + p.missing);
    }
    ASSERT_FALSE(w.transitions.empty());
    EXPECT_EQ(w.transitions.back().state, ProvState::kFinal);
  }

  // Sim runs estimate every window.
  EXPECT_EQ(log.accuracy.size(), report->windows_emitted);
  for (const WindowAccuracy& acc : log.accuracy) {
    const double parts =
        acc.drop_error + acc.staleness_error + acc.approx_error;
    EXPECT_NEAR(acc.observed_error, parts,
                std::max(0.01 * std::abs(acc.observed_error), 1e-6))
        << "window " << acc.window_index;
    if (config.scheme == Scheme::kApprox) {
      // Approximation folds the membership error into its own component:
      // the staleness share would misattribute deliberate sampling error.
      EXPECT_DOUBLE_EQ(acc.staleness_error, 0.0);
    }
  }
  // The summary lands on the report too (schema v4 surfaces it).
  EXPECT_TRUE(report->provenance.enabled);
  EXPECT_EQ(report->provenance.windows_estimated, log.accuracy.size());
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, AccuracyAttributionTest,
    ::testing::Values(Scheme::kCentral, Scheme::kScotty, Scheme::kDisco,
                      Scheme::kApprox, Scheme::kDecoMon, Scheme::kDecoSync,
                      Scheme::kDecoAsync),
    [](const ::testing::TestParamInfo<Scheme>& info) {
      std::string name = SchemeToString(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(AccuracyAttributionTest, SlidingWindowsAreRejected) {
  ExperimentConfig config;
  config.sim = true;
  config.scheme = Scheme::kCentral;
  config.query.window = WindowSpec::CountSliding(4000, 1000);
  config.num_locals = 2;
  config.streams_per_local = 2;
  config.events_per_local = 10'000;
  config.seed = 7;

  auto report = RunExperiment(config);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const auto accuracy = AttributeWindowError(config, *report);
  EXPECT_FALSE(accuracy.ok());
  EXPECT_EQ(accuracy.status().code(), StatusCode::kInvalidArgument);
}

TEST(AccuracyAttributionTest, WallClockReservoirCapsEstimates) {
  ExperimentConfig config;
  config.sim = true;
  config.scheme = Scheme::kDecoSync;
  config.query.window = WindowSpec::CountTumbling(1000);
  config.num_locals = 2;
  config.streams_per_local = 2;
  config.events_per_local = 10'000;
  config.seed = 11;

  auto report = RunExperiment(config);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  AttributionOptions options;
  options.reservoir = 5;
  options.seed = config.seed;
  const auto accuracy = AttributeWindowError(config, *report, options);
  ASSERT_TRUE(accuracy.ok()) << accuracy.status().ToString();
  EXPECT_EQ(accuracy->size(), 5u);
  for (const WindowAccuracy& acc : *accuracy) {
    const double parts =
        acc.drop_error + acc.staleness_error + acc.approx_error;
    EXPECT_NEAR(acc.observed_error, parts,
                std::max(0.01 * std::abs(acc.observed_error), 1e-6));
  }
}

}  // namespace
}  // namespace deco
