#include <gtest/gtest.h>

#include "deco/assembler.h"

namespace deco {
namespace {

// Test fixture that builds slices and raw regions from synthetic per-node
// event sequences with interleaved timestamps: node n's k-th event has
// timestamp `base + k * num_nodes + n`, so the global order interleaves
// round-robin and the expected window composition is easy to reason about.
class AssemblerTest : public ::testing::Test {
 protected:
  static constexpr size_t kNodes = 2;
  static constexpr uint64_t kGlobal = 100;  // global window size

  void SetUp() override {
    func_ = std::move(MakeAggregate(AggregateKind::kSum)).value();
    assembler_ = std::make_unique<WindowAssembler>(kNodes, func_.get(),
                                                   kGlobal);
    next_id_.assign(kNodes, 0);
  }

  // Produces the next `n` events of node `node` (value 1.0 each).
  EventVec Take(size_t node, size_t n) {
    EventVec events;
    for (size_t i = 0; i < n; ++i) {
      Event e;
      e.id = next_id_[node];
      e.stream_id = static_cast<StreamId>(node);
      e.value = 1.0;
      e.timestamp = static_cast<EventTime>(
          1000 + next_id_[node] * kNodes + node);
      ++next_id_[node];
      events.push_back(e);
    }
    return events;
  }

  SliceSummary MakeSlice(const EventVec& events) {
    SliceSummary s;
    s.partial = func_->CreatePartial();
    for (const Event& e : events) func_->Accumulate(&s.partial, e.value);
    s.event_count = events.size();
    if (!events.empty()) {
      s.min_ts = events.front().timestamp;
      s.max_ts = events.back().timestamp;
      s.max_stream_id = events.back().stream_id;
      s.max_event_id = events.back().id;
    }
    s.event_rate = 1000.0;
    return s;
  }

  // Ships a sync-style window: slice of `slice` events + end buffer of
  // `buffer` events for window `w` from `node`.
  void ShipSyncWindow(uint64_t w, size_t node, size_t slice, size_t buffer) {
    ASSERT_TRUE(assembler_->AddSlice(w, node, MakeSlice(Take(node, slice)),
                                     0.0)
                    .ok());
    ASSERT_TRUE(assembler_
                    ->AddRaw(w, node, BatchRole::kEnd, Take(node, buffer),
                             0.0)
                    .ok());
  }

  std::unique_ptr<AggregateFunction> func_;
  std::unique_ptr<WindowAssembler> assembler_;
  std::vector<uint64_t> next_id_;
};

TEST_F(AssemblerTest, NotReadyUntilAllRegionsArrive) {
  WindowAssembly out;
  EXPECT_EQ(assembler_->TryAssemble(&out),
            WindowAssembler::Outcome::kNotReady);
  ASSERT_TRUE(
      assembler_->AddSlice(0, 0, MakeSlice(Take(0, 48)), 0.0).ok());
  EXPECT_EQ(assembler_->TryAssemble(&out),
            WindowAssembler::Outcome::kNotReady);
  ASSERT_TRUE(
      assembler_->AddRaw(0, 0, BatchRole::kEnd, Take(0, 4), 0.0).ok());
  EXPECT_EQ(assembler_->TryAssemble(&out),
            WindowAssembler::Outcome::kNotReady);  // node 1 missing
}

TEST_F(AssemblerTest, BalancedWindowAssemblesExactly) {
  ShipSyncWindow(0, 0, 48, 4);
  ShipSyncWindow(0, 1, 48, 4);
  WindowAssembly out;
  ASSERT_EQ(assembler_->TryAssemble(&out),
            WindowAssembler::Outcome::kAssembled);
  EXPECT_EQ(out.event_count, kGlobal);
  EXPECT_DOUBLE_EQ(func_->Finalize(out.partial), 100.0);
  // Round-robin interleave: each node contributes exactly 50.
  EXPECT_EQ(out.consumed[0], 50u);
  EXPECT_EQ(out.consumed[1], 50u);
  EXPECT_EQ(assembler_->next_window(), 1u);
  // Unselected buffer events carry over.
  EXPECT_EQ(assembler_->leftover_size(0), 2u);
  EXPECT_EQ(assembler_->leftover_size(1), 2u);
}

TEST_F(AssemblerTest, WatermarkIsLastWindowEvent) {
  ShipSyncWindow(0, 0, 48, 4);
  ShipSyncWindow(0, 1, 48, 4);
  WindowAssembly out;
  ASSERT_EQ(assembler_->TryAssemble(&out),
            WindowAssembler::Outcome::kAssembled);
  // The 100th event in interleaved order is node 1's event 49 at
  // 1000 + 49*2 + 1 = 1099.
  EXPECT_EQ(out.watermark.ts, 1099);
}

TEST_F(AssemblerTest, CarryoverFeedsNextWindow) {
  ShipSyncWindow(0, 0, 48, 4);
  ShipSyncWindow(0, 1, 48, 4);
  WindowAssembly out;
  ASSERT_EQ(assembler_->TryAssemble(&out),
            WindowAssembler::Outcome::kAssembled);
  // Window 1: each node's leftover (2) is forced; slices of 46 + buffers
  // of 4 complete it.
  ShipSyncWindow(1, 0, 46, 4);
  ShipSyncWindow(1, 1, 46, 4);
  ASSERT_EQ(assembler_->TryAssemble(&out),
            WindowAssembler::Outcome::kAssembled);
  EXPECT_EQ(out.event_count, kGlobal);
  EXPECT_EQ(out.consumed[0], 50u);
  EXPECT_EQ(out.consumed[1], 50u);
}

TEST_F(AssemblerTest, ImbalancedRatesResolveByTimestamp) {
  // Node 0 contributes events twice as fast (timestamps closer together):
  // regenerate ids so node 0's k-th event is at 1000+k, node 1's at
  // 1000+2k. In the first 100 global events node 0 contributes ~2/3.
  auto take_custom = [&](size_t node, size_t n, EventTime stride) {
    EventVec events;
    for (size_t i = 0; i < n; ++i) {
      Event e;
      e.id = next_id_[node];
      e.stream_id = static_cast<StreamId>(node);
      e.value = 1.0;
      e.timestamp =
          static_cast<EventTime>(1000 + next_id_[node] * stride + node);
      ++next_id_[node];
      events.push_back(e);
    }
    return events;
  };
  const EventVec slice0 = take_custom(0, 60, 1);
  const EventVec buf0 = take_custom(0, 14, 1);
  const EventVec slice1 = take_custom(1, 30, 2);
  const EventVec buf1 = take_custom(1, 8, 2);
  ASSERT_TRUE(assembler_->AddSlice(0, 0, MakeSlice(slice0), 0.0).ok());
  ASSERT_TRUE(
      assembler_->AddRaw(0, 0, BatchRole::kEnd, buf0, 0.0).ok());
  ASSERT_TRUE(assembler_->AddSlice(0, 1, MakeSlice(slice1), 0.0).ok());
  ASSERT_TRUE(
      assembler_->AddRaw(0, 1, BatchRole::kEnd, buf1, 0.0).ok());
  WindowAssembly out;
  ASSERT_EQ(assembler_->TryAssemble(&out),
            WindowAssembler::Outcome::kAssembled);
  EXPECT_EQ(out.consumed[0] + out.consumed[1], kGlobal);
  // Node 0's events are twice as dense, so it contributes about 2/3.
  EXPECT_GT(out.consumed[0], 60u);
  EXPECT_LT(out.consumed[1], 40u);
}

TEST_F(AssemblerTest, OverestimateTriggersCorrection) {
  // Forced events exceed the global window: slices alone sum to 110.
  ShipSyncWindow(0, 0, 55, 2);
  ShipSyncWindow(0, 1, 55, 2);
  WindowAssembly out;
  EXPECT_EQ(assembler_->TryAssemble(&out),
            WindowAssembler::Outcome::kNeedCorrection);
}

TEST_F(AssemblerTest, UnderestimateTriggersCorrection) {
  // Too few events shipped in total: 40+4 per node < 100.
  ShipSyncWindow(0, 0, 40, 4);
  ShipSyncWindow(0, 1, 40, 4);
  WindowAssembly out;
  EXPECT_EQ(assembler_->TryAssemble(&out),
            WindowAssembler::Outcome::kNeedCorrection);
}

TEST_F(AssemblerTest, FullySelectedBufferTriggersCorrection) {
  // Node 0 ships too little; its entire buffer would be consumed, leaving
  // the cut unbounded against its unshipped stream.
  ShipSyncWindow(0, 0, 40, 6);
  ShipSyncWindow(0, 1, 52, 8);
  WindowAssembly out;
  EXPECT_EQ(assembler_->TryAssemble(&out),
            WindowAssembler::Outcome::kNeedCorrection);
}

TEST_F(AssemblerTest, CutInsideSliceTriggersCorrection) {
  // Node 1's slice reaches far beyond the true cut: it covers events up to
  // timestamp ~1150 while node 0 still has unconsumed events below that.
  ShipSyncWindow(0, 0, 40, 4);   // node 0: events up to ts ~1088
  ShipSyncWindow(0, 1, 58, 4);   // node 1: slice alone reaches ts ~1117
  WindowAssembly out;
  EXPECT_EQ(assembler_->TryAssemble(&out),
            WindowAssembler::Outcome::kNeedCorrection);
}

TEST_F(AssemblerTest, CorrectionAssemblesExactWindow) {
  ShipSyncWindow(0, 0, 55, 2);
  ShipSyncWindow(0, 1, 55, 2);
  WindowAssembly out;
  ASSERT_EQ(assembler_->TryAssemble(&out),
            WindowAssembler::Outcome::kNeedCorrection);

  assembler_->BeginCorrection();
  EXPECT_TRUE(assembler_->correcting());
  // Locals resend their full retained regions (57 events each) plus a
  // top-up so the cut can be bounded.
  next_id_.assign(kNodes, 0);  // locals replay from the window start
  ASSERT_TRUE(assembler_->AddCandidates(0, Take(0, 57), 0.0).ok());
  ASSERT_TRUE(assembler_->AddCandidates(1, Take(1, 57), 0.0).ok());
  std::vector<size_t> need_more;
  ASSERT_EQ(assembler_->TryAssembleCorrected(&out, &need_more),
            WindowAssembler::CorrectionOutcome::kAssembled);
  EXPECT_EQ(out.event_count, kGlobal);
  EXPECT_EQ(out.consumed[0], 50u);
  EXPECT_EQ(out.consumed[1], 50u);
  EXPECT_FALSE(assembler_->correcting());
  EXPECT_EQ(assembler_->next_window(), 1u);
  // Correction clears leftovers: locals re-plan from the cut.
  EXPECT_EQ(assembler_->leftover_size(0), 0u);
  EXPECT_EQ(assembler_->leftover_size(1), 0u);
}

TEST_F(AssemblerTest, CorrectionRequestsTopUpWhenShort) {
  ShipSyncWindow(0, 0, 40, 4);
  ShipSyncWindow(0, 1, 40, 4);
  WindowAssembly out;
  ASSERT_EQ(assembler_->TryAssemble(&out),
            WindowAssembler::Outcome::kNeedCorrection);
  assembler_->BeginCorrection();
  next_id_.assign(kNodes, 0);
  ASSERT_TRUE(assembler_->AddCandidates(0, Take(0, 44), 0.0).ok());
  ASSERT_TRUE(assembler_->AddCandidates(1, Take(1, 44), 0.0).ok());
  std::vector<size_t> need_more;
  ASSERT_EQ(assembler_->TryAssembleCorrected(&out, &need_more),
            WindowAssembler::CorrectionOutcome::kNeedMore);
  EXPECT_FALSE(need_more.empty());
  // Top-ups arrive; now the window can be selected exactly.
  for (size_t n : need_more) {
    ASSERT_TRUE(assembler_->AddCandidates(n, Take(n, 20), 0.0).ok());
  }
  ASSERT_EQ(assembler_->TryAssembleCorrected(&out, &need_more),
            WindowAssembler::CorrectionOutcome::kAssembled);
  EXPECT_EQ(out.consumed[0] + out.consumed[1], kGlobal);
}

TEST_F(AssemblerTest, EosWaivesCutBounding) {
  // Node 1 finished its stream; its fully consumed buffer is fine.
  ShipSyncWindow(0, 0, 50, 6);
  ShipSyncWindow(0, 1, 44, 4);
  assembler_->MarkEos(1);
  WindowAssembly out;
  ASSERT_EQ(assembler_->TryAssemble(&out),
            WindowAssembler::Outcome::kAssembled);
  EXPECT_EQ(out.consumed[0] + out.consumed[1], kGlobal);
}

TEST_F(AssemblerTest, AllEosWithTooFewEventsEndsStream) {
  ShipSyncWindow(0, 0, 30, 2);
  ShipSyncWindow(0, 1, 30, 2);
  assembler_->MarkEos(0);
  assembler_->MarkEos(1);
  WindowAssembly out;
  EXPECT_EQ(assembler_->TryAssemble(&out),
            WindowAssembler::Outcome::kEndOfStream);
}

TEST_F(AssemblerTest, RemovedNodeIsExcluded) {
  ShipSyncWindow(0, 0, 90, 20);
  // Node 1 fails; the window is built from node 0 alone.
  assembler_->RemoveNode(1);
  WindowAssembly out;
  ASSERT_EQ(assembler_->TryAssemble(&out),
            WindowAssembler::Outcome::kAssembled);
  EXPECT_EQ(out.consumed[0], kGlobal);
  EXPECT_EQ(out.consumed[1], 0u);
}

TEST_F(AssemblerTest, StaleInputsAreDropped) {
  ShipSyncWindow(0, 0, 48, 4);
  ShipSyncWindow(0, 1, 48, 4);
  WindowAssembly out;
  ASSERT_EQ(assembler_->TryAssemble(&out),
            WindowAssembler::Outcome::kAssembled);
  // Inputs for the already-assembled window 0 are ignored without error.
  EXPECT_TRUE(
      assembler_->AddSlice(0, 0, MakeSlice(Take(0, 5)), 0.0).ok());
  EXPECT_TRUE(
      assembler_->AddRaw(0, 0, BatchRole::kEnd, Take(0, 2), 0.0).ok());
  EXPECT_EQ(assembler_->next_window(), 1u);
}

TEST_F(AssemblerTest, DuplicateRegionsAreErrors) {
  ASSERT_TRUE(
      assembler_->AddSlice(0, 0, MakeSlice(Take(0, 10)), 0.0).ok());
  EXPECT_TRUE(assembler_->AddSlice(0, 0, MakeSlice(Take(0, 10)), 0.0)
                  .IsInternal());
  ASSERT_TRUE(
      assembler_->AddRaw(0, 0, BatchRole::kEnd, Take(0, 2), 0.0).ok());
  EXPECT_TRUE(assembler_->AddRaw(0, 0, BatchRole::kEnd, Take(0, 2), 0.0)
                  .IsInternal());
}

TEST_F(AssemblerTest, UnknownNodeAndBadRoleRejected) {
  EXPECT_TRUE(assembler_->AddSlice(0, 9, SliceSummary{}, 0.0)
                  .IsInvalidArgument());
  EXPECT_TRUE(assembler_->AddRaw(0, 0, BatchRole::kData, {}, 0.0)
                  .IsInvalidArgument());
}

TEST_F(AssemblerTest, LatencyMetaIsEventWeighted) {
  EventVec slice0 = Take(0, 48);
  ASSERT_TRUE(
      assembler_->AddSlice(0, 0, MakeSlice(slice0), 1000.0).ok());
  ASSERT_TRUE(
      assembler_->AddRaw(0, 0, BatchRole::kEnd, Take(0, 4), 2000.0).ok());
  ASSERT_TRUE(
      assembler_->AddSlice(0, 1, MakeSlice(Take(1, 48)), 3000.0).ok());
  ASSERT_TRUE(
      assembler_->AddRaw(0, 1, BatchRole::kEnd, Take(1, 4), 4000.0).ok());
  WindowAssembly out;
  ASSERT_EQ(assembler_->TryAssemble(&out),
            WindowAssembler::Outcome::kAssembled);
  EXPECT_EQ(out.create_count, kGlobal);
  EXPECT_GT(out.create_mean, 1000.0);
  EXPECT_LT(out.create_mean, 4000.0);
}

// ------------------------------------------- Async front-buffer extension

class AsyncAssemblerTest : public AssemblerTest {
 protected:
  void SetUp() override {
    AssemblerTest::SetUp();
    assembler_->set_expect_front(true);
  }

  // Ships an async window: front + slice + end.
  void ShipAsyncWindow(uint64_t w, size_t node, size_t front, size_t slice,
                       size_t end) {
    ASSERT_TRUE(assembler_
                    ->AddRaw(w, node, BatchRole::kFront, Take(node, front),
                             0.0)
                    .ok());
    ASSERT_TRUE(assembler_->AddSlice(w, node, MakeSlice(Take(node, slice)),
                                     0.0)
                    .ok());
    ASSERT_TRUE(assembler_
                    ->AddRaw(w, node, BatchRole::kEnd, Take(node, end), 0.0)
                    .ok());
  }
};

TEST_F(AsyncAssemblerTest, WaitsForNextFrontWhenCutUnbounded) {
  // Per-node regions sum exactly to 50: without the next window's front
  // buffer the cut cannot be bounded, so the assembler waits rather than
  // correcting.
  ShipAsyncWindow(0, 0, 2, 46, 2);
  ShipAsyncWindow(0, 1, 2, 46, 2);
  WindowAssembly out;
  EXPECT_EQ(assembler_->TryAssemble(&out),
            WindowAssembler::Outcome::kNotReady);
  // Window 1's front buffers arrive and extend the selectable region.
  ASSERT_TRUE(
      assembler_->AddRaw(1, 0, BatchRole::kFront, Take(0, 2), 0.0).ok());
  ASSERT_TRUE(
      assembler_->AddRaw(1, 1, BatchRole::kFront, Take(1, 2), 0.0).ok());
  ASSERT_EQ(assembler_->TryAssemble(&out),
            WindowAssembler::Outcome::kAssembled);
  EXPECT_EQ(out.event_count, kGlobal);
  EXPECT_EQ(out.consumed[0], 50u);
  EXPECT_EQ(out.consumed[1], 50u);
}

TEST_F(AsyncAssemblerTest, ExtensionConsumesFrontPrefix) {
  // Node 0's end buffer (1 event) is too small for its true share of 50;
  // the cut legally extends into its next window's front buffer, which
  // must shrink accordingly.
  ShipAsyncWindow(0, 0, 2, 46, 1);  // region 49, true share 50
  ShipAsyncWindow(0, 1, 2, 46, 3);  // region 51
  ASSERT_TRUE(
      assembler_->AddRaw(1, 0, BatchRole::kFront, Take(0, 4), 0.0).ok());
  ASSERT_TRUE(
      assembler_->AddRaw(1, 1, BatchRole::kFront, Take(1, 4), 0.0).ok());
  WindowAssembly out;
  ASSERT_EQ(assembler_->TryAssemble(&out),
            WindowAssembler::Outcome::kAssembled);
  EXPECT_EQ(out.consumed[0], 50u);
  EXPECT_EQ(out.consumed[1], 50u);
}

// Regression: an EOS node may still hold events for LATER windows (the
// async pipeline runs ahead). Waiving the cut-bounding check for such a
// node once produced windows that silently diverged from the ground
// truth; the waiver must only apply when nothing of the node's stream
// lies beyond the current window's selectable region.
TEST_F(AsyncAssemblerTest, EosWaiverRequiresNoLaterInput) {
  // Node 1 is "finished" but its w1 regions are already pending: its w0
  // end region would be fully selected, and without the later-input guard
  // the window would assemble with node 1's cut unbounded.
  ShipAsyncWindow(0, 0, 2, 44, 2);
  ShipAsyncWindow(0, 1, 2, 50, 2);  // over-contributes to w0
  ShipAsyncWindow(1, 1, 2, 44, 2);  // w1 regions already shipped
  assembler_->MarkEos(1);
  WindowAssembly out;
  const auto outcome = assembler_->TryAssemble(&out);
  // With the guard, this must NOT assemble via the waiver: the node has
  // later input, so the verdict is a correction (or not-ready), never a
  // silently wrong window.
  EXPECT_NE(outcome, WindowAssembler::Outcome::kAssembled);
}

// Regression: end-of-stream must not be declared while events for the
// current window sit in later-tagged pending windows (local plans can
// split the tail differently from the root's numbering).
TEST_F(AssemblerTest, EndOfStreamCountsLaterPendingWindows) {
  // All nodes EOS; window 0 only has 30+30 events directly, but window 1
  // regions hold 60 more: a correction can still assemble window 0.
  ShipSyncWindow(0, 0, 28, 2);
  ShipSyncWindow(0, 1, 28, 2);
  ShipSyncWindow(1, 0, 28, 2);
  ShipSyncWindow(1, 1, 28, 2);
  assembler_->MarkEos(0);
  assembler_->MarkEos(1);
  WindowAssembly out;
  EXPECT_EQ(assembler_->TryAssemble(&out),
            WindowAssembler::Outcome::kNeedCorrection);
}

TEST_F(AssemblerTest, EndOfStreamWhenTrulyNothingLeft) {
  ShipSyncWindow(0, 0, 28, 2);
  ShipSyncWindow(0, 1, 28, 2);
  assembler_->MarkEos(0);
  assembler_->MarkEos(1);
  WindowAssembly out;
  EXPECT_EQ(assembler_->TryAssemble(&out),
            WindowAssembler::Outcome::kEndOfStream);
}

}  // namespace
}  // namespace deco
