#include <gtest/gtest.h>

#include <chrono>

#include "deco/root_node.h"
#include "node/runtime.h"

namespace deco {
namespace {

// Drives one real DecoRootNode over the fabric from scripted "local
// nodes": the test body plays both locals, shipping slices and raw edge
// regions and asserting on the assignments, corrections and results the
// root produces.
class RootNodeProtocolTest : public ::testing::Test {
 protected:
  static constexpr uint64_t kWindow = 1000;

  void Start(DecoScheme scheme) {
    fabric_ = std::make_unique<NetworkFabric>(SystemClock::Default(), 3);
    topology_.root = fabric_->RegisterNode("root");
    topology_.locals = {fabric_->RegisterNode("a"),
                        fabric_->RegisterNode("b")};
    QueryConfig query;
    query.window = WindowSpec::CountTumbling(kWindow);
    root_ = std::make_unique<DecoRootNode>(
        fabric_.get(), topology_.root, SystemClock::Default(), topology_,
        query, scheme, &report_);
    root_->Start();
    next_id_.assign(2, 0);
  }

  void TearDown() override {
    if (root_ != nullptr) {
      root_->RequestStop();
      fabric_->Shutdown();
      root_->Join();
    }
  }

  // Next `n` events of local `node`; timestamps interleave round-robin.
  EventVec Take(size_t node, size_t n) {
    EventVec events;
    for (size_t i = 0; i < n; ++i) {
      Event e;
      e.id = next_id_[node];
      e.stream_id = static_cast<StreamId>(node);
      e.value = 1.0;
      e.timestamp = static_cast<EventTime>(1000 + next_id_[node] * 2 + node);
      ++next_id_[node];
      events.push_back(e);
    }
    return events;
  }

  void SendRate(size_t node, uint64_t w, double rate) {
    RateReport report;
    report.window_index = w;
    report.event_rate = rate;
    BinaryWriter writer;
    EncodeRateReport(report, &writer);
    Message msg;
    msg.type = MessageType::kEventRate;
    msg.src = topology_.locals[node];
    msg.dst = topology_.root;
    msg.window_index = w;
    msg.epoch = epoch_;
    msg.payload = writer.Release();
    ASSERT_TRUE(fabric_->Send(std::move(msg)).ok());
  }

  void SendSlice(size_t node, uint64_t w, const EventVec& events,
                 double rate = 500.0) {
    auto func = std::move(MakeAggregate(AggregateKind::kSum)).value();
    SliceSummary summary;
    summary.partial = func->CreatePartial();
    for (const Event& e : events) {
      func->Accumulate(&summary.partial, e.value);
    }
    summary.event_count = events.size();
    if (!events.empty()) {
      summary.min_ts = events.front().timestamp;
      summary.max_ts = events.back().timestamp;
      summary.max_stream_id = events.back().stream_id;
      summary.max_event_id = events.back().id;
    }
    summary.event_rate = rate;
    BinaryWriter writer;
    EncodeSliceSummary(summary, &writer);
    Message msg;
    msg.type = MessageType::kPartialResult;
    msg.src = topology_.locals[node];
    msg.dst = topology_.root;
    msg.window_index = w;
    msg.epoch = epoch_;
    msg.payload = writer.Release();
    ASSERT_TRUE(fabric_->Send(std::move(msg)).ok());
  }

  void SendEndRaw(size_t node, uint64_t w, const EventVec& events) {
    EventBatchPayload payload;
    payload.role = BatchRole::kEnd;
    payload.events = events;
    BinaryWriter writer;
    EncodeEventBatch(payload, &writer);
    Message msg;
    msg.type = MessageType::kEventBatch;
    msg.src = topology_.locals[node];
    msg.dst = topology_.root;
    msg.window_index = w;
    msg.epoch = epoch_;
    msg.payload = writer.Release();
    ASSERT_TRUE(fabric_->Send(std::move(msg)).ok());
  }

  std::optional<Message> ReceiveAt(size_t node, MessageType type) {
    for (int i = 0; i < 64; ++i) {
      auto msg = fabric_->mailbox(topology_.locals[node])
                     ->PopWithTimeout(std::chrono::seconds(5));
      if (!msg.has_value()) return std::nullopt;
      if (msg->type == type) return msg;
    }
    return std::nullopt;
  }

  WindowAssignment DecodeAssignmentOrDie(const Message& msg) {
    BinaryReader reader(msg.payload);
    return std::move(DecodeWindowAssignment(&reader)).value();
  }

  // Plays one full, prediction-conforming window from both locals.
  void PlayBalancedWindow(uint64_t w, size_t slice, size_t buffer) {
    for (size_t n = 0; n < 2; ++n) {
      SendSlice(n, w, Take(n, slice));
      SendEndRaw(n, w, Take(n, buffer));
    }
  }

  std::unique_ptr<NetworkFabric> fabric_;
  Topology topology_;
  std::unique_ptr<DecoRootNode> root_;
  RunReport report_;
  std::vector<uint64_t> next_id_;
  uint64_t epoch_ = 0;
};

TEST_F(RootNodeProtocolTest, BootstrapAssignmentApportionsByRate) {
  Start(DecoScheme::kSync);
  SendRate(0, 0, 600.0);
  SendRate(1, 0, 400.0);
  auto a = ReceiveAt(0, MessageType::kWindowAssignment);
  auto b = ReceiveAt(1, MessageType::kWindowAssignment);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  const WindowAssignment wa = DecodeAssignmentOrDie(*a);
  const WindowAssignment wb = DecodeAssignmentOrDie(*b);
  EXPECT_EQ(wa.window_index, 0u);
  // 1000-event window split 600/400 by the reported rates (paper §4.1).
  EXPECT_EQ(wa.local_window_size, 600u);
  EXPECT_EQ(wb.local_window_size, 400u);
  EXPECT_GT(wa.delta, 0u);
}

TEST_F(RootNodeProtocolTest, VerifiedWindowEmitsResultAndNextAssignment) {
  Start(DecoScheme::kSync);
  SendRate(0, 0, 500.0);
  SendRate(1, 0, 500.0);
  ASSERT_TRUE(ReceiveAt(0, MessageType::kWindowAssignment).has_value());
  ASSERT_TRUE(ReceiveAt(1, MessageType::kWindowAssignment).has_value());

  PlayBalancedWindow(0, 480, 40);
  auto next = ReceiveAt(0, MessageType::kWindowAssignment);
  ASSERT_TRUE(next.has_value());
  const WindowAssignment assignment = DecodeAssignmentOrDie(*next);
  EXPECT_EQ(assignment.window_index, 1u);
  // Watermark is the key of the window's last event.
  EXPECT_GT(assignment.wm_ts, 0);
  EXPECT_EQ(report_.windows_emitted, 1u);
  EXPECT_DOUBLE_EQ(report_.windows[0].value, 1000.0);
  EXPECT_EQ(report_.correction_steps, 0u);
}

TEST_F(RootNodeProtocolTest, OverestimateTriggersCorrectionFlow) {
  Start(DecoScheme::kSync);
  SendRate(0, 0, 500.0);
  SendRate(1, 0, 500.0);
  ASSERT_TRUE(ReceiveAt(0, MessageType::kWindowAssignment).has_value());
  ASSERT_TRUE(ReceiveAt(1, MessageType::kWindowAssignment).has_value());

  // Slices alone exceed the window: 550 + 550 > 1000.
  for (size_t n = 0; n < 2; ++n) {
    SendSlice(n, 0, Take(n, 550));
    SendEndRaw(n, 0, Take(n, 20));
  }
  auto request_msg = ReceiveAt(0, MessageType::kCorrectionRequest);
  ASSERT_TRUE(request_msg.has_value());
  BinaryReader reader(request_msg->payload);
  const CorrectionRequest request =
      std::move(DecodeCorrectionRequest(&reader)).value();
  EXPECT_EQ(request.window_index, 0u);
  EXPECT_EQ(request.topup_events, 0u);  // full resend
  EXPECT_GT(request_msg->epoch, 0u);    // epoch bumped

  // Both locals resend their complete regions (570 events each).
  epoch_ = request_msg->epoch;
  for (size_t n = 0; n < 2; ++n) {
    CorrectionResponse response;
    response.window_index = 0;
    next_id_[n] = 0;  // replay from the window start
    response.events = Take(n, 570);
    response.end_of_stream = false;
    response.round = request.round;  // echo the solicitation round
    BinaryWriter writer;
    EncodeCorrectionResponse(response, &writer);
    Message msg;
    msg.type = MessageType::kCorrectionResult;
    msg.src = topology_.locals[n];
    msg.dst = topology_.root;
    msg.window_index = 0;
    msg.epoch = epoch_;
    msg.payload = writer.Release();
    ASSERT_TRUE(fabric_->Send(std::move(msg)).ok());
  }
  // The corrected window emits exactly 1000 events (500 per node by the
  // interleaved timestamps), and the next assignment carries the bumped
  // epoch (rollback signal).
  auto next = ReceiveAt(0, MessageType::kWindowAssignment);
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->epoch, epoch_);
  EXPECT_EQ(report_.windows_emitted, 1u);
  EXPECT_TRUE(report_.windows[0].corrected);
  EXPECT_DOUBLE_EQ(report_.windows[0].value, 1000.0);
  EXPECT_EQ(report_.correction_steps, 1u);
  EXPECT_EQ(report_.consumption.window(0)[0], 500u);
  EXPECT_EQ(report_.consumption.window(0)[1], 500u);
}

TEST_F(RootNodeProtocolTest, HolisticAggregateIsRejected) {
  fabric_ = std::make_unique<NetworkFabric>(SystemClock::Default(), 3);
  topology_.root = fabric_->RegisterNode("root");
  topology_.locals = {fabric_->RegisterNode("a")};
  QueryConfig query;
  query.window = WindowSpec::CountTumbling(kWindow);
  query.aggregate = AggregateKind::kMedian;
  root_ = std::make_unique<DecoRootNode>(
      fabric_.get(), topology_.root, SystemClock::Default(), topology_,
      query, DecoScheme::kSync, &report_);
  root_->Start();
  root_->Join();
  EXPECT_TRUE(root_->status().IsNotSupported());
  root_.reset();
  fabric_->Shutdown();
}

TEST_F(RootNodeProtocolTest, ShutdownBroadcastOnEndOfStream) {
  Start(DecoScheme::kSync);
  SendRate(0, 0, 500.0);
  SendRate(1, 0, 500.0);
  ASSERT_TRUE(ReceiveAt(0, MessageType::kWindowAssignment).has_value());
  ASSERT_TRUE(ReceiveAt(1, MessageType::kWindowAssignment).has_value());
  PlayBalancedWindow(0, 480, 40);
  ASSERT_TRUE(ReceiveAt(0, MessageType::kWindowAssignment).has_value());

  // Both locals announce end of stream with too few events for another
  // window; the root terminates and broadcasts shutdown.
  for (size_t n = 0; n < 2; ++n) {
    Message msg;
    msg.type = MessageType::kShutdown;
    msg.src = topology_.locals[n];
    msg.dst = topology_.root;
    msg.epoch = epoch_;
    ASSERT_TRUE(fabric_->Send(std::move(msg)).ok());
  }
  EXPECT_TRUE(ReceiveAt(0, MessageType::kShutdown).has_value());
  EXPECT_TRUE(ReceiveAt(1, MessageType::kShutdown).has_value());
  root_->Join();
  EXPECT_TRUE(root_->status().ok());
}

}  // namespace
}  // namespace deco
