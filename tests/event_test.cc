#include <gtest/gtest.h>

#include <algorithm>

#include "event/event.h"
#include "event/serde.h"

namespace deco {
namespace {

Event MakeEvent(EventId id, StreamId stream, double value, EventTime ts) {
  Event e;
  e.id = id;
  e.stream_id = stream;
  e.value = value;
  e.timestamp = ts;
  return e;
}

// ------------------------------------------------------------- Ordering

TEST(EventOrderTest, OrdersByTimestampFirst) {
  EventTimestampLess less;
  EXPECT_TRUE(less(MakeEvent(5, 3, 0, 10), MakeEvent(1, 0, 0, 20)));
  EXPECT_FALSE(less(MakeEvent(1, 0, 0, 20), MakeEvent(5, 3, 0, 10)));
}

TEST(EventOrderTest, TiesBreakByStreamThenId) {
  EventTimestampLess less;
  // Same timestamp: lower stream id wins.
  EXPECT_TRUE(less(MakeEvent(9, 1, 0, 10), MakeEvent(0, 2, 0, 10)));
  // Same timestamp and stream: lower event id wins.
  EXPECT_TRUE(less(MakeEvent(3, 1, 0, 10), MakeEvent(4, 1, 0, 10)));
  // Identical keys are not less than each other.
  EXPECT_FALSE(less(MakeEvent(3, 1, 0, 10), MakeEvent(3, 1, 0, 10)));
}

TEST(EventOrderTest, IsStrictWeakOrderOnSample) {
  EventTimestampLess less;
  std::vector<Event> events;
  for (EventTime ts : {10, 20}) {
    for (StreamId s : {0u, 1u}) {
      for (EventId id : {0u, 1u}) {
        events.push_back(MakeEvent(id, s, 0, ts));
      }
    }
  }
  std::sort(events.begin(), events.end(), less);
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_FALSE(less(events[i], events[i - 1]));
  }
}

TEST(EventTest, ToStringMentionsFields) {
  const std::string s = ToString(MakeEvent(7, 2, 3.5, 99));
  EXPECT_NE(s.find("id=7"), std::string::npos);
  EXPECT_NE(s.find("stream=2"), std::string::npos);
  EXPECT_NE(s.find("ts=99"), std::string::npos);
}

// --------------------------------------------------------- Binary serde

TEST(BinarySerdeTest, PrimitiveRoundTrip) {
  BinaryWriter writer;
  writer.PutU8(200);
  writer.PutU32(123456);
  writer.PutU64(1ull << 60);
  writer.PutI64(-42);
  writer.PutDouble(3.25);
  writer.PutString("hello");

  BinaryReader reader(writer.buffer());
  EXPECT_EQ(reader.GetU8().value(), 200);
  EXPECT_EQ(reader.GetU32().value(), 123456u);
  EXPECT_EQ(reader.GetU64().value(), 1ull << 60);
  EXPECT_EQ(reader.GetI64().value(), -42);
  EXPECT_DOUBLE_EQ(reader.GetDouble().value(), 3.25);
  EXPECT_EQ(reader.GetString().value(), "hello");
  EXPECT_TRUE(reader.AtEnd());
}

TEST(BinarySerdeTest, EventRoundTrip) {
  const Event e = MakeEvent(17, 4, -1.5, 123456789);
  BinaryWriter writer;
  writer.PutEvent(e);
  EXPECT_EQ(writer.size(), kBinaryEventSize);
  BinaryReader reader(writer.buffer());
  EXPECT_EQ(reader.GetEvent().value(), e);
}

TEST(BinarySerdeTest, EventBatchRoundTrip) {
  EventVec events;
  for (int i = 0; i < 100; ++i) {
    events.push_back(MakeEvent(i, i % 3, i * 0.5, 1000 + i));
  }
  BinaryWriter writer;
  writer.PutEvents(events);
  BinaryReader reader(writer.buffer());
  EXPECT_EQ(reader.GetEvents().value(), events);
  EXPECT_TRUE(reader.AtEnd());
}

TEST(BinarySerdeTest, UnderflowIsError) {
  BinaryWriter writer;
  writer.PutU32(1);
  BinaryReader reader(writer.buffer());
  EXPECT_TRUE(reader.GetU64().status().IsOutOfRange());
}

TEST(BinarySerdeTest, TruncatedStringIsError) {
  BinaryWriter writer;
  writer.PutU32(100);  // claims 100 bytes follow
  BinaryReader reader(writer.buffer());
  EXPECT_TRUE(reader.GetString().status().IsOutOfRange());
}

TEST(BinarySerdeTest, HugeEventCountIsRejectedNotAllocated) {
  BinaryWriter writer;
  writer.PutU64(1ull << 60);  // absurd count with no bytes behind it
  BinaryReader reader(writer.buffer());
  EXPECT_TRUE(reader.GetEvents().status().IsOutOfRange());
}

// ----------------------------------------------------------- Text serde

TEST(TextSerdeTest, EventRoundTrip) {
  const Event e = MakeEvent(9, 3, 2.7182818, 555);
  const std::string text = EncodeEventText(e);
  EXPECT_NE(text.find("event;"), std::string::npos);
  const Event decoded = DecodeEventText(text).value();
  EXPECT_EQ(decoded.id, e.id);
  EXPECT_EQ(decoded.stream_id, e.stream_id);
  EXPECT_EQ(decoded.timestamp, e.timestamp);
  EXPECT_DOUBLE_EQ(decoded.value, e.value);
}

TEST(TextSerdeTest, BatchRoundTripPreservesOrder) {
  EventVec events;
  for (int i = 0; i < 20; ++i) {
    events.push_back(MakeEvent(i, 1, i * 1.25, 10 * i));
  }
  const EventVec decoded = DecodeEventsText(EncodeEventsText(events)).value();
  ASSERT_EQ(decoded.size(), events.size());
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(decoded[i].id, events[i].id);
    EXPECT_EQ(decoded[i].timestamp, events[i].timestamp);
  }
}

TEST(TextSerdeTest, TextIsLargerThanBinary) {
  // The premise of the Disco network experiments: string wire formats cost
  // more bytes than the compact binary one.
  EventVec events;
  for (int i = 0; i < 50; ++i) {
    events.push_back(MakeEvent(i, 2, 1.0 / 3.0, 1'000'000'000 + i));
  }
  BinaryWriter writer;
  writer.PutEvents(events);
  EXPECT_GT(EncodeEventsText(events).size(), writer.size());
}

TEST(TextSerdeTest, MalformedInputsAreErrors) {
  EXPECT_FALSE(DecodeEventText("garbage").ok());
  EXPECT_FALSE(DecodeEventText("event;id=1").ok());
  EXPECT_FALSE(DecodeEventText("event;id=1;stream=2;value=3").ok());
  EXPECT_FALSE(
      DecodeEventText("event;bogus=1;stream=2;value=3;timestamp=4").ok());
}

TEST(TextSerdeTest, EmptyLinesAreSkipped) {
  const EventVec decoded = DecodeEventsText("\n\n").value();
  EXPECT_TRUE(decoded.empty());
}

}  // namespace
}  // namespace deco
