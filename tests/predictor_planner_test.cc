#include <gtest/gtest.h>

#include "deco/planner.h"
#include "deco/predictor.h"

namespace deco {
namespace {

// -------------------------------------------------------------- Predictor

TEST(PredictorTest, NotReadyUntilTwoObservations) {
  LocalWindowPredictor p(4, 1, 1.0);
  EXPECT_FALSE(p.Ready());
  p.ObserveActual(100);
  EXPECT_FALSE(p.Ready());
  p.ObserveActual(110);
  EXPECT_TRUE(p.Ready());
}

TEST(PredictorTest, PredictsLastActual) {
  // Paper Eq. 1: the prediction is the previous actual size.
  LocalWindowPredictor p(4, 1, 1.0);
  p.ObserveActual(600'000);
  p.ObserveActual(601'000);
  EXPECT_EQ(p.PredictedSize(), 601'000u);
  p.ObserveActual(599'000);
  EXPECT_EQ(p.PredictedSize(), 599'000u);
}

TEST(PredictorTest, DeltaIsAbsoluteDifference) {
  // Paper's numerical example: sizes 0.6M then 0.601M give delta 1000.
  LocalWindowPredictor p(1, 1, 1.0);
  p.ObserveActual(600'000);
  p.ObserveActual(601'000);
  EXPECT_EQ(p.Delta(), 1000u);
  p.ObserveActual(600'500);  // |601000 - 600500| = 500, history m=1
  EXPECT_EQ(p.Delta(), 500u);
}

TEST(PredictorTest, DeltaAveragesOverHistoryM) {
  LocalWindowPredictor p(3, 1, 1.0);
  p.ObserveActual(100);
  p.ObserveActual(110);  // diff 10
  p.ObserveActual(130);  // diff 20
  p.ObserveActual(100);  // diff 30
  EXPECT_EQ(p.Delta(), 20u);  // (10+20+30)/3
  p.ObserveActual(100);  // diff 0 evicts diff 10 -> round(50/3.0)
  EXPECT_EQ(p.Delta(), 17u);
}

TEST(PredictorTest, DeltaFloorApplies) {
  LocalWindowPredictor p(4, 5, 1.0);
  p.ObserveActual(100);
  p.ObserveActual(100);  // diff 0
  EXPECT_EQ(p.Delta(), 5u);
}

TEST(PredictorTest, DeltaMultiplierWidens) {
  LocalWindowPredictor p(1, 1, 2.0);
  p.ObserveActual(100);
  p.ObserveActual(110);
  EXPECT_EQ(p.Delta(), 20u);  // 10 * 2.0
}

TEST(PredictorTest, SmallMIsReactiveLargeMIsSteady) {
  // Paper §4.2.2: small m reacts to changes, large m smooths them.
  LocalWindowPredictor reactive(1, 1, 1.0);
  LocalWindowPredictor steady(8, 1, 1.0);
  for (uint64_t v : {100u, 100u, 100u, 100u, 100u, 200u}) {
    reactive.ObserveActual(v);
    steady.ObserveActual(v);
  }
  EXPECT_EQ(reactive.Delta(), 100u);  // latest jump dominates
  EXPECT_EQ(steady.Delta(), 20u);     // (0+0+0+0+100)/5
}

// ---------------------------------------------------------------- Planner

TEST(PlannerTest, SyncLayoutMatchesAlgorithm2) {
  // Paper example: predicted 0.601M, delta 1000 -> slice 0.6M, buffer 2000.
  const SlicePlan plan = PlanSync(601'000, 1000);
  EXPECT_EQ(plan.front_buffer, 0u);
  EXPECT_EQ(plan.slice, 600'000u);
  EXPECT_EQ(plan.end_buffer, 2000u);
  EXPECT_EQ(plan.TotalRegion(), 602'000u);
}

TEST(PlannerTest, SyncDegenerateSliceKeepsCoverage) {
  // Eq. 3 else-branch: slice collapses to 0 when prediction <= delta; the
  // raw region must still cover prediction + slack.
  const SlicePlan plan = PlanSync(10, 15);
  EXPECT_EQ(plan.slice, 0u);
  EXPECT_GE(plan.end_buffer, 25u);
}

TEST(PlannerTest, AsyncRegionSumsToPrediction) {
  // Algorithm 4: the async layout consumes exactly the predicted size per
  // window, which is what keeps the pipeline self-balancing.
  const SlicePlan plan = PlanAsync(601'000, 1000);
  EXPECT_EQ(plan.TotalRegion(), 601'000u);
  EXPECT_GT(plan.front_buffer, 0u);
  EXPECT_GT(plan.end_buffer, 0u);
  EXPECT_GT(plan.slice, 0u);
  EXPECT_EQ(plan.front_buffer, AsyncFrontSize(601'000, 1000));
  EXPECT_EQ(plan.end_buffer, AsyncEndSize(601'000, 1000));
}

TEST(PlannerTest, AsyncBuffersHaveSizeRelativeFloor) {
  // Even with a tiny delta the buffers cover the discrete cut jitter.
  EXPECT_GE(AsyncEndSize(100'000, 1), 100'000u / 256);
  EXPECT_GE(AsyncFrontSize(100'000, 1), 100'000u / 512);
  // And grow with delta when drift dominates.
  EXPECT_EQ(AsyncEndSize(1000, 400), 800u);
}

TEST(PlannerTest, AsyncDegenerateSplitsEvenly) {
  const SlicePlan plan = PlanAsync(10, 20);
  EXPECT_EQ(plan.slice, 0u);
  EXPECT_GE(plan.front_buffer, 5u);
  EXPECT_GE(plan.end_buffer, 5u);
}

TEST(PlannerTest, AsyncSlackShipsSurplus) {
  const SlicePlan steady = PlanAsync(100'000, 500);
  const SlicePlan slack = PlanAsyncSlack(100'000, 500);
  EXPECT_GT(slack.TotalRegion(), 100'000u);
  // Surplus is the margin-balancing recentering target (end - front) / 2.
  EXPECT_EQ(slack.TotalRegion() - 100'000u,
            (steady.end_buffer - steady.front_buffer) / 2);
}

TEST(PlannerTest, MonMatchesSyncLayout) {
  const SlicePlan mon = PlanMon(50'000, 200);
  const SlicePlan sync = PlanSync(50'000, 200);
  EXPECT_EQ(mon.slice, sync.slice);
  EXPECT_EQ(mon.end_buffer, sync.end_buffer);
}

// Property sweep: layouts never lose events and never underflow.
class PlannerProperty
    : public ::testing::TestWithParam<std::pair<uint64_t, uint64_t>> {};

TEST_P(PlannerProperty, LayoutsAreConsistent) {
  const auto [predicted, delta] = GetParam();
  const SlicePlan sync = PlanSync(predicted, delta);
  // Sync covers at least prediction + delta worth of events.
  EXPECT_GE(sync.TotalRegion(), predicted);
  EXPECT_EQ(sync.front_buffer, 0u);

  const SlicePlan async = PlanAsync(predicted, delta);
  EXPECT_GE(async.TotalRegion(), predicted);
  if (async.slice > 0) {
    EXPECT_EQ(async.TotalRegion(), predicted);
  }

  const SlicePlan slack = PlanAsyncSlack(predicted, delta);
  EXPECT_GT(slack.TotalRegion(), predicted);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndDeltas, PlannerProperty,
    ::testing::Values(std::pair<uint64_t, uint64_t>{1, 1},
                      std::pair<uint64_t, uint64_t>{10, 1},
                      std::pair<uint64_t, uint64_t>{10, 100},
                      std::pair<uint64_t, uint64_t>{1000, 1},
                      std::pair<uint64_t, uint64_t>{1000, 499},
                      std::pair<uint64_t, uint64_t>{1'000'000, 1000},
                      std::pair<uint64_t, uint64_t>{1'000'000, 1}));

}  // namespace
}  // namespace deco
