#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "metrics/report.h"
#include "obs/bench_record.h"

namespace deco {
namespace {

// Tests of the structured bench output (src/obs/bench_record.h): repeat
// aggregation math, standard-metric extraction from RunReport,
// deterministic field ordering, and the file round-trip.

TEST(AggregateTest, SingleValue) {
  const MetricAggregate a = BenchRecorder::Aggregate({42.0});
  EXPECT_EQ(a.min, 42.0);
  EXPECT_EQ(a.max, 42.0);
  EXPECT_EQ(a.mean, 42.0);
  EXPECT_EQ(a.median, 42.0);
  EXPECT_EQ(a.stddev, 0.0);
}

TEST(AggregateTest, OddCountMedianIsMiddleValue) {
  const MetricAggregate a = BenchRecorder::Aggregate({5.0, 1.0, 3.0});
  EXPECT_EQ(a.min, 1.0);
  EXPECT_EQ(a.max, 5.0);
  EXPECT_EQ(a.mean, 3.0);
  EXPECT_EQ(a.median, 3.0);
  // Population stddev of {1,3,5}: sqrt(8/3).
  EXPECT_NEAR(a.stddev, 1.632993161855452, 1e-12);
}

TEST(AggregateTest, EvenCountMedianAveragesTheMiddlePair) {
  const MetricAggregate a =
      BenchRecorder::Aggregate({4.0, 1.0, 3.0, 2.0});
  EXPECT_EQ(a.min, 1.0);
  EXPECT_EQ(a.max, 4.0);
  EXPECT_EQ(a.mean, 2.5);
  EXPECT_EQ(a.median, 2.5);
  // Population stddev of {1,2,3,4}: sqrt(5/4).
  EXPECT_NEAR(a.stddev, 1.118033988749895, 1e-12);
}

TEST(AggregateTest, EmptySeriesIsAllZeros) {
  const MetricAggregate a = BenchRecorder::Aggregate({});
  EXPECT_EQ(a.min, 0.0);
  EXPECT_EQ(a.max, 0.0);
  EXPECT_EQ(a.mean, 0.0);
  EXPECT_EQ(a.median, 0.0);
  EXPECT_EQ(a.stddev, 0.0);
}

RunReport FakeReport(double throughput) {
  RunReport report;
  report.scheme = "deco-async";
  report.events_processed = 1000;
  report.wall_seconds = 0.5;
  report.throughput_eps = throughput;
  report.windows_emitted = 10;
  report.correction_steps = 2;
  report.network.total_messages = 64;
  report.network.total_bytes = 4096;
  for (int i = 0; i < 100; ++i) report.latency.Record(1000 + i);
  return report;
}

TEST(BenchRecorderTest, AddReportExtractsStandardMetrics) {
  BenchRecorder recorder("test_bench");
  recorder.AddReport("deco-async", FakeReport(2e6));
  const std::string json = recorder.ToJson();
  for (const char* metric :
       {"\"throughput_eps\"", "\"latency_mean_nanos\"",
        "\"latency_p50_nanos\"", "\"latency_p99_nanos\"",
        "\"bytes_per_event\"", "\"total_messages\"", "\"total_bytes\"",
        "\"windows_emitted\"", "\"correction_steps\"",
        "\"events_processed\"", "\"wall_seconds\""}) {
    EXPECT_NE(json.find(metric), std::string::npos) << metric;
  }
  // bytes/event = 4096 / 1000.
  EXPECT_NE(json.find("\"values\":[4.0960000000000001]"),
            std::string::npos)
      << json;
  // Unprofiled rows carry a null cpu_breakdown.
  EXPECT_NE(json.find("\"cpu_breakdown\":null"), std::string::npos);
}

TEST(BenchRecorderTest, RepeatsAccumulateIntoOneRow) {
  BenchRecorder recorder("test_bench");
  recorder.AddReport("deco-async", FakeReport(1e6));
  recorder.AddReport("deco-async", FakeReport(3e6));
  recorder.AddReport("deco-async", FakeReport(2e6));
  const std::string json = recorder.ToJson();
  // One row, three repeats, median picks the middle run.
  EXPECT_NE(json.find("\"values\":[1000000,3000000,2000000]"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"median\":2000000"), std::string::npos);
  EXPECT_NE(json.find("\"min\":1000000"), std::string::npos);
  EXPECT_NE(json.find("\"max\":3000000"), std::string::npos);
}

TEST(BenchRecorderTest, DeterministicOrderingAndIdempotentRender) {
  auto build = [] {
    BenchRecorder recorder("order_bench");
    recorder.SetConfig("scale", 0.5);
    recorder.SetConfig("sim", true);
    recorder.SetConfig("note", "hello");
    recorder.AddMetric("row-b", "metric_z", 1.0);
    recorder.AddMetric("row-b", "metric_a", 2.0);
    recorder.AddMetric("row-a", "metric_z", 3.0);
    return recorder.ToJson();
  };
  const std::string a = build();
  const std::string b = build();
  EXPECT_EQ(a, b);
  // Insertion order everywhere: config scale < sim < note, row-b before
  // row-a, metric_z before metric_a.
  EXPECT_LT(a.find("\"scale\""), a.find("\"sim\""));
  EXPECT_LT(a.find("\"sim\""), a.find("\"note\""));
  EXPECT_LT(a.find("\"row-b\""), a.find("\"row-a\""));
  EXPECT_LT(a.find("\"metric_z\""), a.find("\"metric_a\""));
}

TEST(BenchRecorderTest, SetConfigOverwritesInPlace) {
  BenchRecorder recorder("cfg_bench");
  recorder.SetConfig("scale", 1.0);
  recorder.SetConfig("repeat", static_cast<int64_t>(3));
  recorder.SetConfig("scale", 2.0);  // overwrite keeps position
  const std::string json = recorder.ToJson();
  EXPECT_NE(json.find("\"scale\":2"), std::string::npos);
  EXPECT_EQ(json.find("\"scale\":1"), std::string::npos);
  EXPECT_LT(json.find("\"scale\""), json.find("\"repeat\""));
}

TEST(BenchRecorderTest, DocumentCarriesIdentityAndHostInfo) {
  BenchRecorder recorder("id_bench");
  const std::string json = recorder.ToJson();
  EXPECT_NE(json.find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(json.find("\"bench\":\"id_bench\""), std::string::npos);
  EXPECT_NE(json.find("\"git_sha\":\"" + BenchRecorder::GitSha() + "\""),
            std::string::npos);
  EXPECT_NE(json.find("\"cores\""), std::string::npos);
  EXPECT_NE(json.find("\"trace_enabled\""), std::string::npos);
  EXPECT_NE(json.find("\"sanitizer\""), std::string::npos);
}

TEST(BenchRecorderTest, ProfiledReportBecomesCpuBreakdown) {
  RunReport report = FakeReport(1e6);
  report.profile.enabled = true;
  ThreadProfile thread;
  thread.name = "root";
  thread.cpu_nanos = 123456;
  thread.messages_handled = 7;
  report.profile.threads.push_back(thread);

  BenchRecorder recorder("prof_bench");
  recorder.AddReport("deco-async", report);
  const std::string json = recorder.ToJson();
  EXPECT_NE(json.find("\"cpu_breakdown\":{\"enabled\":true"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"cpu_total_nanos\""), std::string::npos);
  EXPECT_EQ(json.find("\"cpu_breakdown\":null"), std::string::npos);
}

TEST(BenchRecorderTest, WriteJsonRoundTripsThroughDisk) {
  BenchRecorder recorder("disk_bench");
  recorder.SetConfig("scale", 0.25);
  recorder.AddMetric("row", "metric", 1.5);
  const std::string path = ::testing::TempDir() + "/bench_record_test.json";
  ASSERT_TRUE(recorder.WriteJson(path).ok());

  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), recorder.ToJson() + "\n");
  std::remove(path.c_str());
}

TEST(BenchRecorderTest, WriteJsonFailsOnUnwritablePath) {
  BenchRecorder recorder("disk_bench");
  const Status status =
      recorder.WriteJson("/nonexistent-dir/bench_record_test.json");
  EXPECT_FALSE(status.ok());
}

}  // namespace
}  // namespace deco
