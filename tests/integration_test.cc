#include <gtest/gtest.h>

#include <cmath>

#include "harness/experiment.h"
#include "node/runtime.h"

namespace deco {
namespace {

// End-to-end runs over the in-process fabric. Scales are kept small so the
// whole suite stays fast; every scheme still crosses its full protocol
// (bootstrap, steady state, corrections, end-of-stream).

ExperimentConfig SmallConfig(Scheme scheme) {
  ExperimentConfig config;
  config.scheme = scheme;
  config.query.window = WindowSpec::CountTumbling(2000);
  config.query.aggregate = AggregateKind::kSum;
  config.num_locals = 3;
  config.streams_per_local = 2;
  config.events_per_local = 30'000;
  config.base_rate = 50'000;
  config.rate_change = 0.05;
  config.batch_size = 512;
  config.seed = 1234;
  return config;
}

RunReport MustRun(const ExperimentConfig& config) {
  auto result = RunExperiment(config);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

void ExpectSameResults(const RunReport& truth, const RunReport& report) {
  ASSERT_EQ(report.windows.size(), truth.windows.size())
      << report.scheme << " emitted a different number of windows";
  for (size_t i = 0; i < truth.windows.size(); ++i) {
    EXPECT_NEAR(report.windows[i].value, truth.windows[i].value,
                1e-6 * std::max(1.0, std::abs(truth.windows[i].value)))
        << report.scheme << " window " << i;
    EXPECT_EQ(report.windows[i].event_count, truth.windows[i].event_count);
  }
  const CorrectnessReport correctness =
      CompareConsumption(truth.consumption, report.consumption);
  EXPECT_DOUBLE_EQ(correctness.correctness, 1.0) << report.scheme;
}

class SchemeEquivalence : public ::testing::TestWithParam<Scheme> {};

TEST_P(SchemeEquivalence, MatchesCentralGroundTruth) {
  const RunReport truth = MustRun(SmallConfig(Scheme::kCentral));
  ASSERT_GT(truth.windows_emitted, 10u);
  const RunReport report = MustRun(SmallConfig(GetParam()));
  ExpectSameResults(truth, report);
}

INSTANTIATE_TEST_SUITE_P(ExactSchemes, SchemeEquivalence,
                         ::testing::Values(Scheme::kScotty, Scheme::kDisco,
                                           Scheme::kDecoMon,
                                           Scheme::kDecoSync,
                                           Scheme::kDecoAsync,
                                           Scheme::kDecoMonLocal));

TEST(IntegrationTest, ApproxDriftsUnderRateChange) {
  ExperimentConfig config = SmallConfig(Scheme::kApprox);
  config.rate_change = 0.5;  // strong drift
  config.rate_skew = 0.3;    // heterogeneous nodes
  const RunReport truth = [&] {
    ExperimentConfig c = config;
    c.scheme = Scheme::kCentral;
    return MustRun(c);
  }();
  const RunReport approx = MustRun(config);
  const CorrectnessReport correctness =
      CompareConsumption(truth.consumption, approx.consumption);
  // Approx is fast but wrong: overlap must be clearly below 100%.
  EXPECT_LT(correctness.correctness, 0.999);
  EXPECT_GT(correctness.correctness, 0.2);
  EXPECT_EQ(approx.correction_steps, 0u);
}

TEST(IntegrationTest, DecoExactEvenUnderExtremeRateChange) {
  // Fig. 10d/f: Deco stays exact at 50% rate change where Approx breaks.
  for (Scheme scheme : {Scheme::kDecoSync, Scheme::kDecoMon}) {
    ExperimentConfig config = SmallConfig(scheme);
    config.rate_change = 0.5;
    const RunReport truth = [&] {
      ExperimentConfig c = config;
      c.scheme = Scheme::kCentral;
      return MustRun(c);
    }();
    const RunReport report = MustRun(config);
    ExpectSameResults(truth, report);
    // At this drift level the schemes must have needed corrections.
    EXPECT_GT(report.correction_steps, 0u) << report.scheme;
  }
}

TEST(IntegrationTest, DecoSavesNetworkVersusCentral) {
  ExperimentConfig config = SmallConfig(Scheme::kDecoSync);
  config.rate_change = 0.01;
  const RunReport truth = [&] {
    ExperimentConfig c = config;
    c.scheme = Scheme::kCentral;
    return MustRun(c);
  }();
  const RunReport deco = MustRun(config);
  // The headline claim: decentralized aggregation ships a small fraction
  // of the bytes of centralized processing.
  EXPECT_LT(deco.network.total_bytes, truth.network.total_bytes / 3);
}

TEST(IntegrationTest, DifferentAggregatesStayExact) {
  for (AggregateKind kind : {AggregateKind::kMin, AggregateKind::kMax,
                             AggregateKind::kAvg}) {
    ExperimentConfig config = SmallConfig(Scheme::kDecoSync);
    config.query.aggregate = kind;
    ExperimentConfig central = config;
    central.scheme = Scheme::kCentral;
    const RunReport truth = MustRun(central);
    const RunReport report = MustRun(config);
    ASSERT_EQ(report.windows.size(), truth.windows.size());
    for (size_t i = 0; i < truth.windows.size(); ++i) {
      EXPECT_NEAR(report.windows[i].value, truth.windows[i].value, 1e-9)
          << AggregateKindToString(kind) << " window " << i;
    }
  }
}

TEST(IntegrationTest, HolisticAggregateRequiresCentral) {
  ExperimentConfig config = SmallConfig(Scheme::kDecoSync);
  config.query.aggregate = AggregateKind::kMedian;
  EXPECT_TRUE(RunExperiment(config).status().IsNotSupported());
  // Central runs it fine (paper footnote 2).
  config.scheme = Scheme::kCentral;
  config.events_per_local = 6000;
  const RunReport report = MustRun(config);
  EXPECT_GT(report.windows_emitted, 0u);
}

TEST(IntegrationTest, SlidingWindowsOnCentralizedSchemes) {
  ExperimentConfig config = SmallConfig(Scheme::kScotty);
  config.query.window = WindowSpec::CountSliding(2000, 1000);
  const RunReport report = MustRun(config);
  // 90k events -> (90000 - 2000) / 1000 + 1 = 89 sliding windows.
  EXPECT_EQ(report.windows_emitted, 89u);
}

TEST(IntegrationTest, DecentralizedSlidingMatchesCentralized) {
  // Extension beyond the paper: sliding count windows decompose into
  // gcd(length, slide) panes; each pane runs through the Deco protocol and
  // the root composes the overlapping windows from pane partials.
  ExperimentConfig config = SmallConfig(Scheme::kScotty);
  config.query.window = WindowSpec::CountSliding(3000, 1000);
  const RunReport truth = MustRun(config);
  for (Scheme scheme : {Scheme::kDecoSync, Scheme::kDecoAsync}) {
    config.scheme = scheme;
    const RunReport report = MustRun(config);
    ASSERT_EQ(report.windows_emitted, truth.windows_emitted)
        << SchemeToString(scheme);
    for (size_t i = 0; i < truth.windows.size(); ++i) {
      EXPECT_NEAR(report.windows[i].value, truth.windows[i].value,
                  1e-6 * std::max(1.0, std::abs(truth.windows[i].value)))
          << SchemeToString(scheme) << " sliding window " << i;
    }
  }
}

TEST(IntegrationTest, ValidationRejectsBadConfigs) {
  ExperimentConfig config = SmallConfig(Scheme::kCentral);
  config.num_locals = 0;
  EXPECT_FALSE(RunExperiment(config).ok());
  config = SmallConfig(Scheme::kCentral);
  config.base_rate = -5;
  EXPECT_FALSE(RunExperiment(config).ok());
  config = SmallConfig(Scheme::kCentral);
  config.query.window = WindowSpec::TimeTumbling(1000);
  EXPECT_TRUE(RunExperiment(config).status().IsNotSupported());
}

TEST(IntegrationTest, SchemeNamesRoundTrip) {
  for (int i = 0; i <= static_cast<int>(Scheme::kDecoMonLocal); ++i) {
    const Scheme scheme = static_cast<Scheme>(i);
    EXPECT_EQ(*SchemeFromString(SchemeToString(scheme)), scheme);
  }
  EXPECT_FALSE(SchemeFromString("bogus").ok());
}

TEST(IntegrationTest, ReportsCarryThroughputAndLatency) {
  const RunReport report = MustRun(SmallConfig(Scheme::kDecoSync));
  EXPECT_GT(report.throughput_eps, 0.0);
  EXPECT_GT(report.wall_seconds, 0.0);
  EXPECT_EQ(report.latency.count(), report.windows_emitted);
  EXPECT_GT(report.latency.mean(), 0.0);
  EXPECT_EQ(report.events_processed, report.windows_emitted * 2000);
}

TEST(IntegrationTest, LocalNodeFailureIsSurvivedViaTimeout) {
  // Paper §4.3.4: the root removes a silent node after a timeout and
  // corrects the affected window from the survivors. Simulation-driven:
  // the crash is a virtual-time chaos event at a deterministic stream
  // position, not a wall-clock sleep racing the pipeline.
  ExperimentConfig config = SmallConfig(Scheme::kDecoSync);
  config.sim = true;
  config.events_per_local = 90'000;
  config.base_rate = 30'000;
  // cpu = rate: after the token bucket's one-second initial burst the
  // stream is paced, so virtual time advances and the 300ms crash lands
  // mid-run.
  config.cpu_events_per_sec = 30'000;
  config.root_options.node_timeout_nanos = 120 * kNanosPerMilli;
  config.sim_time_limit_nanos = 60 * kNanosPerSecond;
  auto schedule = ChaosSchedule::Parse("crash:local-1@300ms");
  ASSERT_TRUE(schedule.ok()) << schedule.status().ToString();
  config.chaos.schedule = *schedule;

  auto report = RunExperiment(config);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  // The run completed and kept emitting windows after the failure.
  EXPECT_GT(report->windows_emitted, 10u);
  EXPECT_GT(report->correction_steps, 0u);
  bool removed = false;
  for (const MembershipEvent& event : report->membership) {
    removed |= !event.rejoined;
  }
  EXPECT_TRUE(removed) << "root never removed the crashed node";
}

}  // namespace
}  // namespace deco
