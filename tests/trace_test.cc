#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "common/clock.h"
#include "stream/trace.h"

namespace deco {
namespace {

Event MakeEvent(EventId id, double value, EventTime ts) {
  Event e;
  e.id = id;
  e.stream_id = 1;
  e.value = value;
  e.timestamp = ts;
  return e;
}

EventVec SampleTrace() {
  EventVec events;
  for (int i = 0; i < 100; ++i) {
    events.push_back(MakeEvent(i, i * 0.5 - 10, 1000 + i * 100));
  }
  return events;
}

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(TraceFileTest, RoundTrip) {
  const std::string path = TempPath("deco_trace_roundtrip.csv");
  const EventVec events = SampleTrace();
  ASSERT_TRUE(WriteTraceFile(path, events).ok());
  const EventVec loaded = ReadTraceFile(path).value();
  ASSERT_EQ(loaded.size(), events.size());
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(loaded[i].id, events[i].id);
    EXPECT_EQ(loaded[i].stream_id, events[i].stream_id);
    EXPECT_DOUBLE_EQ(loaded[i].value, events[i].value);
    EXPECT_EQ(loaded[i].timestamp, events[i].timestamp);
  }
  std::remove(path.c_str());
}

TEST(TraceFileTest, MissingFileIsIOError) {
  EXPECT_TRUE(ReadTraceFile("/nonexistent/deco.csv").status().IsIOError());
}

TEST(TraceFileTest, ParseLineVariants) {
  EXPECT_TRUE(ParseTraceLine("# comment").status().IsNotFound());
  EXPECT_TRUE(ParseTraceLine("").status().IsNotFound());
  const Event e = ParseTraceLine("7,3,-1.25,99000").value();
  EXPECT_EQ(e.id, 7u);
  EXPECT_EQ(e.stream_id, 3u);
  EXPECT_DOUBLE_EQ(e.value, -1.25);
  EXPECT_EQ(e.timestamp, 99000);
  EXPECT_TRUE(ParseTraceLine("1,2").status().IsInvalidArgument());
  EXPECT_TRUE(ParseTraceLine("1,2,abc,4").status().IsInvalidArgument());
}

TEST(TraceFileTest, MalformedLineReportsLineNumber) {
  const std::string path = TempPath("deco_trace_bad.csv");
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("1,1,2.0,100\nnot-a-line\n", f);
    std::fclose(f);
  }
  const Status status = ReadTraceFile(path).status();
  EXPECT_TRUE(status.IsInvalidArgument());
  EXPECT_NE(status.message().find(":2:"), std::string::npos);
  std::remove(path.c_str());
}

TEST(TraceSourceTest, CreateValidates) {
  EXPECT_FALSE(TraceSource::Create({}, 0).ok());
  EventVec unsorted = SampleTrace();
  std::swap(unsorted[0], unsorted[1]);
  EXPECT_FALSE(TraceSource::Create(std::move(unsorted), 0).ok());
  EXPECT_TRUE(TraceSource::Create(SampleTrace(), 0).ok());
}

TEST(TraceSourceTest, ReplaysValuesInOrder) {
  TraceSource source = std::move(TraceSource::Create(SampleTrace(), 5))
                           .value();
  for (int i = 0; i < 100; ++i) {
    const Event e = source.Next();
    EXPECT_EQ(e.id, static_cast<EventId>(i));
    EXPECT_EQ(e.stream_id, 5u);
    EXPECT_DOUBLE_EQ(e.value, i * 0.5 - 10);
  }
}

TEST(TraceSourceTest, StartOffsetShiftsPhase) {
  TraceSource source =
      std::move(TraceSource::Create(SampleTrace(), 1, 40)).value();
  EXPECT_DOUBLE_EQ(source.Next().value, 40 * 0.5 - 10);
}

TEST(TraceSourceTest, LoopingKeepsTimeMonotonic) {
  TraceSource source = std::move(TraceSource::Create(SampleTrace(), 0))
                           .value();
  EventTime last = -1;
  for (int i = 0; i < 550; ++i) {  // 5.5 passes over the 100-event trace
    const Event e = source.Next();
    EXPECT_GT(e.timestamp, last) << "at event " << i;
    last = e.timestamp;
  }
  EXPECT_EQ(source.emitted(), 550u);
}

TEST(TraceSourceTest, MeanRateMatchesTraceDensity) {
  // 100 events spanning 9900 ns -> 99 gaps of 100 ns -> 1e7 events/s.
  TraceSource source = std::move(TraceSource::Create(SampleTrace(), 0))
                           .value();
  EXPECT_NEAR(source.MeanRate(), 1e7, 1.0);
}

TEST(TraceSourceTest, BatchMatchesSingles) {
  TraceSource a = std::move(TraceSource::Create(SampleTrace(), 0)).value();
  TraceSource b = std::move(TraceSource::Create(SampleTrace(), 0)).value();
  EventVec batch;
  a.NextBatch(130, &batch);
  for (const Event& e : batch) {
    EXPECT_EQ(e, b.Next());
  }
}

}  // namespace
}  // namespace deco
