// Watchdog detector tests: hand-built telemetry samples exercise each
// detector's threshold and the hysteresis state machine (trip streak,
// fire-once-per-episode, resolve streak), then deterministic --sim chaos
// runs provoke the detectors end to end through the harness.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/clock.h"
#include "harness/experiment.h"
#include "obs/flight_recorder.h"
#include "obs/metric_registry.h"
#include "obs/sampler.h"
#include "obs/watchdog.h"

namespace deco {
namespace {

constexpr TimeNanos kTick = 100 * kNanosPerMilli;

NodeSample MakeNode(const std::string& name, uint64_t sent,
                    uint64_t queue_depth = 0) {
  NodeSample node;
  node.name = name;
  node.messages_sent = sent;
  node.queue_depth = queue_depth;
  return node;
}

TelemetrySample MakeSample(TimeNanos t, int64_t windows, int64_t corrections,
                           std::vector<NodeSample> nodes) {
  TelemetrySample sample;
  sample.t_nanos = t;
  sample.nodes = std::move(nodes);
  sample.metrics.counters.emplace_back("root.corrections", corrections);
  sample.metrics.counters.emplace_back("root.windows_emitted", windows);
  return sample;
}

WatchdogOptions FastOptions() {
  WatchdogOptions options;
  options.stall_nanos = 2 * kTick;
  options.queue_depth_limit = 100;
  options.silence_nanos = 2 * kTick;
  options.corrections_per_sec = 50.0;
  options.trip_ticks = 2;
  options.clear_ticks = 2;
  return options;
}

// ------------------------------------------------------------ hysteresis

TEST(WatchdogTest, QueueGrowthNeedsTripTicksToFire) {
  Watchdog watchdog(FastOptions());
  TimeNanos t = kNanosPerSecond;
  // Seed sample, then one breaching tick: not enough for trip_ticks=2.
  watchdog.OnSample(MakeSample(t, 0, 0, {MakeNode("local-0", 1, 0)}));
  t += kTick;
  watchdog.OnSample(MakeSample(t, 0, 0, {MakeNode("local-0", 2, 500)}));
  EXPECT_EQ(watchdog.fired_count(), 0u);
  // Second consecutive breach fires.
  t += kTick;
  watchdog.OnSample(MakeSample(t, 0, 0, {MakeNode("local-0", 3, 500)}));
  ASSERT_EQ(watchdog.fired_count(), 1u);
  const Alert alert = watchdog.Alerts()[0];
  EXPECT_EQ(alert.kind, AlertKind::kQueueGrowth);
  EXPECT_EQ(alert.subject, "local-0");
  EXPECT_DOUBLE_EQ(alert.observed, 500.0);
  EXPECT_DOUBLE_EQ(alert.threshold, 100.0);
  EXPECT_EQ(alert.resolved_at_nanos, 0);
}

TEST(WatchdogTest, BreachStreakResetsOnCleanSample) {
  Watchdog watchdog(FastOptions());
  TimeNanos t = kNanosPerSecond;
  watchdog.OnSample(MakeSample(t, 0, 0, {MakeNode("local-0", 1, 0)}));
  // Alternating breach/clean never reaches trip_ticks=2.
  for (int i = 0; i < 6; ++i) {
    t += kTick;
    const uint64_t depth = (i % 2 == 0) ? 500 : 0;
    watchdog.OnSample(
        MakeSample(t, 0, 0, {MakeNode("local-0", 1 + i, depth)}));
  }
  EXPECT_EQ(watchdog.fired_count(), 0u);
}

TEST(WatchdogTest, FiresExactlyOncePerEpisodeAndResolves) {
  Watchdog watchdog(FastOptions());
  TimeNanos t = kNanosPerSecond;
  watchdog.OnSample(MakeSample(t, 0, 0, {MakeNode("local-0", 1, 0)}));
  // Long breach episode: exactly one alert no matter how long it lasts.
  for (int i = 0; i < 10; ++i) {
    t += kTick;
    watchdog.OnSample(
        MakeSample(t, 0, 0, {MakeNode("local-0", 2 + i, 500)}));
  }
  EXPECT_EQ(watchdog.fired_count(), 1u);
  EXPECT_EQ(watchdog.active_count(), 1u);

  // One clean tick is not enough to resolve (clear_ticks=2)...
  t += kTick;
  watchdog.OnSample(MakeSample(t, 0, 0, {MakeNode("local-0", 20, 0)}));
  EXPECT_EQ(watchdog.active_count(), 1u);
  // ...the second clears it and stamps resolved_at_nanos.
  t += kTick;
  watchdog.OnSample(MakeSample(t, 0, 0, {MakeNode("local-0", 21, 0)}));
  EXPECT_EQ(watchdog.active_count(), 0u);
  ASSERT_EQ(watchdog.Alerts().size(), 1u);
  EXPECT_EQ(watchdog.Alerts()[0].resolved_at_nanos, t);

  // A fresh breach episode fires a second, distinct alert.
  for (int i = 0; i < 2; ++i) {
    t += kTick;
    watchdog.OnSample(
        MakeSample(t, 0, 0, {MakeNode("local-0", 22 + i, 999)}));
  }
  EXPECT_EQ(watchdog.fired_count(), 2u);
  EXPECT_EQ(watchdog.Alerts()[1].resolved_at_nanos, 0);
}

// ------------------------------------------------------- window stall

TEST(WatchdogTest, StallFiresOnlyWhileTrafficFlows) {
  Watchdog watchdog(FastOptions());
  TimeNanos t = kNanosPerSecond;
  // Windows advance normally, then freeze at 5 while traffic keeps moving.
  watchdog.OnSample(MakeSample(t, 4, 0, {MakeNode("local-0", 10)}));
  t += kTick;
  watchdog.OnSample(MakeSample(t, 5, 0, {MakeNode("local-0", 20)}));
  for (int i = 0; i < 4; ++i) {
    t += kTick;
    watchdog.OnSample(
        MakeSample(t, 5, 0, {MakeNode("local-0", 30 + 10 * i)}));
  }
  ASSERT_GE(watchdog.fired_count(), 1u);
  EXPECT_EQ(watchdog.Alerts()[0].kind, AlertKind::kWindowStall);
  EXPECT_EQ(watchdog.Alerts()[0].subject, "root");
}

TEST(WatchdogTest, QuiescentRunTailDoesNotStall) {
  Watchdog watchdog(FastOptions());
  TimeNanos t = kNanosPerSecond;
  watchdog.OnSample(MakeSample(t, 5, 0, {MakeNode("local-0", 20)}));
  // Windows frozen AND traffic frozen: a finished run, not a stall. The
  // silence detector must stay quiet too — nobody else is advancing.
  for (int i = 0; i < 10; ++i) {
    t += kTick;
    watchdog.OnSample(MakeSample(t, 5, 0, {MakeNode("local-0", 20)}));
  }
  EXPECT_EQ(watchdog.fired_count(), 0u);
}

// --------------------------------------------------- heartbeat silence

TEST(WatchdogTest, SilenceFiresForFrozenNodeWhileOthersAdvance) {
  Watchdog watchdog(FastOptions());
  TimeNanos t = kNanosPerSecond;
  watchdog.OnSample(MakeSample(
      t, 0, 0, {MakeNode("local-0", 10), MakeNode("local-1", 10)}));
  // local-1 freezes; local-0 keeps sending (windows advance so the stall
  // detector stays out of the picture).
  for (int i = 1; i <= 5; ++i) {
    t += kTick;
    watchdog.OnSample(MakeSample(
        t, i, 0, {MakeNode("local-0", 10 + 10 * i), MakeNode("local-1", 10)}));
  }
  ASSERT_GE(watchdog.fired_count(), 1u);
  const Alert alert = watchdog.Alerts()[0];
  EXPECT_EQ(alert.kind, AlertKind::kHeartbeatSilence);
  EXPECT_EQ(alert.subject, "local-1");
}

// ---------------------------------------------------- correction storm

TEST(WatchdogTest, CorrectionStormFiresOnRate) {
  Watchdog watchdog(FastOptions());  // limit: 50 corrections/s
  TimeNanos t = kNanosPerSecond;
  int64_t corrections = 0;
  watchdog.OnSample(MakeSample(t, 1, corrections, {MakeNode("local-0", 1)}));
  // 20 corrections per 100 ms tick = 200/s, well above the limit.
  for (int i = 1; i <= 3; ++i) {
    t += kTick;
    corrections += 20;
    watchdog.OnSample(
        MakeSample(t, 1 + i, corrections, {MakeNode("local-0", 1 + i)}));
  }
  ASSERT_GE(watchdog.fired_count(), 1u);
  EXPECT_EQ(watchdog.Alerts()[0].kind, AlertKind::kCorrectionStorm);
  EXPECT_GT(watchdog.Alerts()[0].observed, 50.0);
}

// --------------------------------------------------- byte-budget burn

TEST(WatchdogTest, TenantByteBurnFiresAbovebudget) {
  WatchdogOptions options = FastOptions();
  options.tenant_bytes_per_sec = 1000.0;
  Watchdog watchdog(options);
  TimeNanos t = kNanosPerSecond;

  auto sample_with_bytes = [&](TimeNanos at, int64_t windows, int64_t acme,
                               int64_t zen) {
    TelemetrySample sample =
        MakeSample(at, windows, 0, {MakeNode("local-0", windows + 1)});
    sample.metrics.counters.emplace_back("serve.tenant.acme.bytes", acme);
    sample.metrics.counters.emplace_back("serve.tenant.zen.bytes", zen);
    return sample;
  };

  // acme burns 1000 bytes per 100 ms tick = 10 kB/s; zen stays cold.
  watchdog.OnSample(sample_with_bytes(t, 0, 0, 0));
  for (int i = 1; i <= 3; ++i) {
    t += kTick;
    watchdog.OnSample(sample_with_bytes(t, i, 1000 * i, 10 * i));
  }
  ASSERT_EQ(watchdog.fired_count(), 1u);
  const Alert alert = watchdog.Alerts()[0];
  EXPECT_EQ(alert.kind, AlertKind::kByteBudgetBurn);
  EXPECT_EQ(alert.subject, "acme");
  EXPECT_GT(alert.observed, 1000.0);
}

// ------------------------------------------------ registry + recorder

TEST(WatchdogTest, RegistryCountersTrackFireAndResolve) {
  MetricRegistry registry;
  Watchdog watchdog(FastOptions(), &registry);
  TimeNanos t = kNanosPerSecond;
  watchdog.OnSample(MakeSample(t, 0, 0, {MakeNode("local-0", 1, 0)}));
  for (int i = 0; i < 2; ++i) {
    t += kTick;
    watchdog.OnSample(
        MakeSample(t, 0, 0, {MakeNode("local-0", 2 + i, 500)}));
  }
  EXPECT_EQ(registry.counter("watchdog.alerts_fired")->value(), 1);
  EXPECT_EQ(registry.counter("watchdog.fired.queue-growth")->value(), 1);
  EXPECT_EQ(registry.gauge("watchdog.alerts_active")->value(), 1);
  for (int i = 0; i < 2; ++i) {
    t += kTick;
    watchdog.OnSample(
        MakeSample(t, 0, 0, {MakeNode("local-0", 10 + i, 0)}));
  }
  EXPECT_EQ(registry.gauge("watchdog.alerts_active")->value(), 0);
}

TEST(WatchdogTest, FirstFireDumpsFlightRecorderOnce) {
  const std::string dump_path =
      ::testing::TempDir() + "/watchdog_trip_dump.json";
  std::remove(dump_path.c_str());

  SystemClock clock;
  FlightRecorder recorder(&clock);
  Watchdog watchdog(FastOptions());
  watchdog.SetFlightRecorder(&recorder, dump_path);

  TimeNanos t = kNanosPerSecond;
  watchdog.OnSample(MakeSample(t, 0, 0, {MakeNode("local-0", 1, 0)}));
  for (int i = 0; i < 4; ++i) {
    t += kTick;
    watchdog.OnSample(
        MakeSample(t, 0, 0, {MakeNode("local-0", 2 + i, 500)}));
  }
  ASSERT_EQ(watchdog.fired_count(), 1u);
  EXPECT_EQ(recorder.alerts_recorded(), 1u);

  std::FILE* f = std::fopen(dump_path.c_str(), "r");
  ASSERT_NE(f, nullptr) << dump_path;
  std::string content;
  char buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) content.append(buf, n);
  std::fclose(f);
  EXPECT_NE(content.find("\"reason\": \"watchdog:queue-growth\""),
            std::string::npos)
      << content.substr(0, 200);
  std::remove(dump_path.c_str());
}

// ------------------------------------------- governed fleets (512 nodes)

// Above the governance detail limit the sampler stops visiting every node
// per tick: each sample carries a strided 1-in-8 subset plus the current
// top-k offenders, while the fleet totals still cover all 512 nodes.
// These tests feed the watchdog exactly that shape and prove the detector
// contract survives it: hysteresis is per node and indifferent to how
// often the node appears, so a breach episode still fires exactly once
// and resolves exactly once.

constexpr size_t kFleet = 512;
constexpr size_t kStride = 8;  // ceil(512 / 64): the default detail limit

// One governed sample: fleet totals from all node counters, detail from
// the tick's stride phase plus explicit offender ids (the stale top-k the
// sampler would boost into every tick).
TelemetrySample MakeGovernedSample(TimeNanos t, int64_t windows,
                                   const std::vector<uint64_t>& sent,
                                   uint64_t tick,
                                   const std::vector<size_t>& offenders) {
  TelemetrySample sample;
  sample.t_nanos = t;
  sample.metrics.counters.emplace_back("root.corrections", 0);
  sample.metrics.counters.emplace_back("root.windows_emitted", windows);
  sample.fleet.node_count = sent.size();
  sample.fleet.collapsed = true;
  for (uint64_t s : sent) sample.fleet.total_messages_sent += s;
  std::vector<size_t> ids;
  for (size_t id = tick % kStride; id < sent.size(); id += kStride) {
    ids.push_back(id);
  }
  ids.insert(ids.end(), offenders.begin(), offenders.end());
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  sample.fleet.detail_nodes = ids.size();
  for (size_t id : ids) {
    sample.nodes.push_back(
        MakeNode("local-" + std::to_string(id), sent[id]));
  }
  return sample;
}

TEST(WatchdogScaleTest, StridedScanTripsSilenceOncePerEpisodeAt512) {
  WatchdogOptions options = FastOptions();
  options.stall_nanos = 0;  // isolate the silence detector
  Watchdog watchdog(options);

  std::vector<uint64_t> sent(kFleet, 10);
  TimeNanos t = kNanosPerSecond;
  int64_t windows = 0;
  uint64_t tick = 0;
  auto advance = [&](bool freeze_victim,
                     const std::vector<size_t>& offenders) {
    for (size_t id = 0; id < kFleet; ++id) {
      if (freeze_victim && id == 77) continue;
      ++sent[id];
    }
    watchdog.OnSample(
        MakeGovernedSample(t, ++windows, sent, tick++, offenders));
    t += kTick;
  };

  // Healthy warm-up: every node advances, detail rotates through the
  // stride phases. Nothing may fire even though each node is only seen
  // on every 8th tick.
  for (size_t i = 0; i < 2 * kStride; ++i) advance(false, {});
  EXPECT_EQ(watchdog.fired_count(), 0u);

  // local-77 goes silent. The sampler's staleness top-k boosts it into
  // every subsequent sample; a long episode still fires exactly once.
  for (size_t i = 0; i < 3 * kStride; ++i) advance(true, {77});
  ASSERT_EQ(watchdog.fired_count(), 1u);
  const Alert fired = watchdog.Alerts()[0];
  EXPECT_EQ(fired.kind, AlertKind::kHeartbeatSilence);
  EXPECT_EQ(fired.subject, "local-77");
  EXPECT_EQ(watchdog.active_count(), 1u);

  // Recovery: once local-77 sends again, the episode resolves and stays
  // resolved — no second alert from the strided re-appearances.
  for (size_t i = 0; i < 2 * kStride; ++i) advance(false, {77});
  EXPECT_EQ(watchdog.fired_count(), 1u);
  EXPECT_EQ(watchdog.active_count(), 0u);
  EXPECT_GT(watchdog.Alerts()[0].resolved_at_nanos,
            watchdog.Alerts()[0].fired_at_nanos);
}

TEST(WatchdogScaleTest, CollapsedSampleStillTripsStallOnceAt512) {
  WatchdogOptions options = FastOptions();
  options.silence_nanos = 0;  // isolate the stall detector
  Watchdog watchdog(options);

  std::vector<uint64_t> sent(kFleet, 10);
  TimeNanos t = kNanosPerSecond;
  int64_t windows = 0;
  uint64_t tick = 0;
  auto advance = [&](bool window_progress) {
    for (size_t id = 0; id < kFleet; ++id) ++sent[id];
    if (window_progress) ++windows;
    watchdog.OnSample(MakeGovernedSample(t, windows, sent, tick++, {}));
    t += kTick;
  };

  for (int i = 0; i < 4; ++i) advance(true);
  EXPECT_EQ(watchdog.fired_count(), 0u);

  // Windows freeze while the fleet totals keep advancing. The stall
  // detector reads the governed fleet aggregate (no per-node series
  // needed), so the collapsed sample still trips it — once.
  for (int i = 0; i < 10; ++i) advance(false);
  ASSERT_EQ(watchdog.fired_count(), 1u);
  EXPECT_EQ(watchdog.Alerts()[0].kind, AlertKind::kWindowStall);
  EXPECT_EQ(watchdog.Alerts()[0].subject, "root");

  // Window progress resumes: the episode resolves, total stays one.
  for (int i = 0; i < 4; ++i) advance(true);
  EXPECT_EQ(watchdog.fired_count(), 1u);
  EXPECT_EQ(watchdog.active_count(), 0u);
}

// ------------------------------------------------------ sim integration

// A deterministic sim run whose chaos schedule lags the root for long
// enough that windows freeze while the locals keep streaming: the stall
// detector must fire exactly once and resolve after the lag lifts.
TEST(WatchdogSimTest, ChaosLagTripsStallDetectorOnce) {
  ExperimentConfig config;
  config.scheme = Scheme::kDecoSync;
  config.query.window = WindowSpec::CountTumbling(10'000);
  config.query.aggregate = AggregateKind::kSum;
  config.num_locals = 2;
  config.streams_per_local = 2;
  config.events_per_local = 400'000;
  config.base_rate = 1e6;
  config.rate_change = 0.01;
  config.batch_size = 2048;
  config.seed = 7;
  config.sim = true;
  config.cpu_events_per_sec = 200'000;  // pace the run so chaos lands mid-stream
  config.chaos.schedule.LatencySpike("root", 500 * kNanosPerMilli,
                                     600 * kNanosPerMilli,
                                     kNanosPerSecond);

  std::vector<Alert> alerts;
  config.ops.watchdog = true;
  config.ops.watchdog_options.stall_nanos = 200 * kNanosPerMilli;
  config.ops.watchdog_options.silence_nanos = 0;  // isolate the stall detector
  config.ops.watchdog_options.trip_ticks = 2;
  // Wide clear streak: while the delayed backlog trickles in, a single
  // window arriving must not split the stall into two episodes.
  config.ops.watchdog_options.clear_ticks = 6;
  config.ops.alerts = &alerts;
  config.telemetry.sample_interval_nanos = 50 * kNanosPerMilli;

  auto report = RunExperiment(config);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->windows_emitted, 0u);

  size_t stalls = 0;
  for (const Alert& alert : alerts) {
    if (alert.kind == AlertKind::kWindowStall) {
      ++stalls;
      EXPECT_EQ(alert.subject, "root");
      // The episode may still be active when the run drains; when it did
      // resolve, the resolve edge must come after the fire edge.
      if (alert.resolved_at_nanos != 0) {
        EXPECT_GT(alert.resolved_at_nanos, alert.fired_at_nanos);
      }
    }
  }
  EXPECT_EQ(stalls, 1u) << "stall must fire exactly once per episode";
}

// Crashing a local under deco-sync (no failure detector configured in this
// run — timeout set so the run completes) freezes that node's egress while
// the survivor keeps streaming: the silence detector names the dead node.
TEST(WatchdogSimTest, ChaosCrashTripsSilenceDetector) {
  ExperimentConfig config;
  config.scheme = Scheme::kDecoSync;
  config.query.window = WindowSpec::CountTumbling(10'000);
  config.query.aggregate = AggregateKind::kSum;
  config.num_locals = 2;
  config.streams_per_local = 2;
  config.events_per_local = 400'000;
  config.base_rate = 1e6;
  config.rate_change = 0.01;
  config.batch_size = 2048;
  config.seed = 11;
  config.sim = true;
  config.cpu_events_per_sec = 200'000;
  config.root_options.node_timeout_nanos = 300 * kNanosPerMilli;
  config.chaos.schedule.Crash("local-1", 400 * kNanosPerMilli);

  std::vector<Alert> alerts;
  config.ops.watchdog = true;
  config.ops.watchdog_options.stall_nanos = 0;  // isolate silence
  // Above the root's 300 ms partial-timeout stall so only the dead
  // node (frozen forever) trips, not the waiting root.
  config.ops.watchdog_options.silence_nanos = 450 * kNanosPerMilli;
  config.ops.watchdog_options.trip_ticks = 2;
  config.ops.alerts = &alerts;
  config.telemetry.sample_interval_nanos = 50 * kNanosPerMilli;

  auto report = RunExperiment(config);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  size_t silences = 0;
  for (const Alert& alert : alerts) {
    if (alert.kind == AlertKind::kHeartbeatSilence) {
      ++silences;
      EXPECT_EQ(alert.subject, "local-1");
    }
  }
  EXPECT_EQ(silences, 1u);
}

// The same seeded sim run must produce the identical alert trace twice:
// the watchdog rides the deterministic sample series, so its output is
// replayable too.
TEST(WatchdogSimTest, AlertTraceIsDeterministic) {
  auto run_once = [](std::vector<Alert>* alerts) {
    ExperimentConfig config;
    config.scheme = Scheme::kDecoSync;
    config.query.window = WindowSpec::CountTumbling(10'000);
    config.query.aggregate = AggregateKind::kSum;
    config.num_locals = 2;
    config.streams_per_local = 2;
    config.events_per_local = 400'000;
    config.base_rate = 1e6;
    config.rate_change = 0.01;
    config.batch_size = 2048;
    config.seed = 7;
    config.sim = true;
    config.cpu_events_per_sec = 200'000;
    config.chaos.schedule.LatencySpike("root", 500 * kNanosPerMilli,
                                       600 * kNanosPerMilli,
                                       kNanosPerSecond);
    config.ops.watchdog = true;
    config.ops.watchdog_options.stall_nanos = 200 * kNanosPerMilli;
    config.ops.watchdog_options.silence_nanos = 0;
    config.ops.watchdog_options.clear_ticks = 6;
    config.ops.alerts = alerts;
    config.telemetry.sample_interval_nanos = 50 * kNanosPerMilli;
    auto report = RunExperiment(config);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
  };

  std::vector<Alert> first, second;
  run_once(&first);
  run_once(&second);
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].kind, second[i].kind);
    EXPECT_EQ(first[i].subject, second[i].subject);
    EXPECT_EQ(first[i].fired_at_nanos, second[i].fired_at_nanos);
    EXPECT_EQ(first[i].resolved_at_nanos, second[i].resolved_at_nanos);
  }
}

}  // namespace
}  // namespace deco
