#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/flags.h"
#include "common/logging.h"
#include "common/queue.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"

namespace deco {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesSetCodeAndMessage) {
  Status s = Status::InvalidArgument("bad thing");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad thing");
  EXPECT_EQ(s.ToString(), "invalid-argument: bad thing");
}

TEST(StatusTest, AllFactoriesMapToMatchingPredicates) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::Timeout("x").IsTimeout());
  EXPECT_TRUE(Status::NetworkError("x").IsNetworkError());
  EXPECT_TRUE(Status::NodeFailed("x").IsNodeFailed());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::Cancelled("x").IsCancelled());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::Timeout("t"), Status::Timeout("t"));
  EXPECT_NE(Status::Timeout("t"), Status::Timeout("u"));
  EXPECT_NE(Status::Timeout("t"), Status::NotFound("t"));
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "ok");
  EXPECT_EQ(StatusCodeToString(StatusCode::kTimeout), "timeout");
  EXPECT_EQ(StatusCodeToString(StatusCode::kNodeFailed), "node-failed");
}

Status ReturnsErrorThrough() {
  DECO_RETURN_NOT_OK(Status::NotFound("inner"));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(ReturnsErrorThrough().IsNotFound());
}

// ---------------------------------------------------------------- Result

Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = ParsePositive(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = ParsePositive(-1);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
  EXPECT_EQ(r.value_or(42), 42);
}

Result<int> Doubled(int v) {
  DECO_ASSIGN_OR_RETURN(int parsed, ParsePositive(v));
  return parsed * 2;
}

TEST(ResultTest, AssignOrReturnUnwrapsAndPropagates) {
  ASSERT_TRUE(Doubled(4).ok());
  EXPECT_EQ(*Doubled(4), 8);
  EXPECT_TRUE(Doubled(0).status().IsInvalidArgument());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> owned = std::move(r).value();
  EXPECT_EQ(*owned, 5);
}

// ----------------------------------------------------------------- Clock

TEST(ClockTest, SystemClockIsMonotonic) {
  Clock* clock = SystemClock::Default();
  const TimeNanos a = clock->NowNanos();
  const TimeNanos b = clock->NowNanos();
  EXPECT_LE(a, b);
}

TEST(ClockTest, ManualClockAdvances) {
  ManualClock clock(100);
  EXPECT_EQ(clock.NowNanos(), 100);
  clock.Advance(50);
  EXPECT_EQ(clock.NowNanos(), 150);
  clock.SetNanos(1'000'000);
  EXPECT_EQ(clock.NowMillis(), 1);
}

// ------------------------------------------------------------------- Rng

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.NextBounded(13), 13u);
  }
}

TEST(RngTest, BoundedIsRoughlyUniform) {
  Rng rng(11);
  std::vector<int> counts(8, 0);
  const int kDraws = 80'000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.NextBounded(8)];
  for (int c : counts) {
    EXPECT_GT(c, kDraws / 8 * 0.9);
    EXPECT_LT(c, kDraws / 8 * 1.1);
  }
}

TEST(RngTest, NextIntCoversClosedRange) {
  Rng rng(5);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextInt(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 2);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10'000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, GaussianHasPlausibleMoments) {
  Rng rng(17);
  double sum = 0, sq = 0;
  const int kDraws = 50'000;
  for (int i = 0; i < kDraws; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  const double mean = sum / kDraws;
  const double var = sq / kDraws - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(3);
  EXPECT_FALSE(rng.NextBool(0.0));
  EXPECT_TRUE(rng.NextBool(1.0));
  int heads = 0;
  for (int i = 0; i < 10'000; ++i) heads += rng.NextBool(0.25);
  EXPECT_NEAR(heads / 10'000.0, 0.25, 0.02);
}

// ----------------------------------------------------------------- Flags

TEST(FlagsTest, ParsesTypedValues) {
  const char* argv[] = {"prog",       "--name=deco", "--count=42",
                        "--rate=1.5", "--verbose",   "positional",
                        "--list=1,2,3"};
  Flags flags = Flags::Parse(7, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetString("name", ""), "deco");
  EXPECT_EQ(flags.GetInt("count", 0), 42);
  EXPECT_DOUBLE_EQ(flags.GetDouble("rate", 0.0), 1.5);
  EXPECT_TRUE(flags.GetBool("verbose", false));
  EXPECT_TRUE(flags.Has("verbose"));
  EXPECT_FALSE(flags.Has("missing"));
  EXPECT_EQ(flags.GetInt("missing", -1), -1);
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "positional");
  const std::vector<int64_t> list = flags.GetIntList("list", {});
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[2], 3);
}

TEST(FlagsTest, BoolFalseValues) {
  const char* argv[] = {"prog", "--a=false", "--b=0", "--c=true", "--d=1"};
  Flags flags = Flags::Parse(5, const_cast<char**>(argv));
  EXPECT_FALSE(flags.GetBool("a", true));
  EXPECT_FALSE(flags.GetBool("b", true));
  EXPECT_TRUE(flags.GetBool("c", false));
  EXPECT_TRUE(flags.GetBool("d", false));
}

// ---------------------------------------------------------------- Queues

TEST(BlockingQueueTest, FifoOrder) {
  BlockingQueue<int> q;
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(q.Push(i));
  for (int i = 0; i < 10; ++i) EXPECT_EQ(q.Pop().value(), i);
}

TEST(BlockingQueueTest, CloseWakesAndDrains) {
  BlockingQueue<int> q;
  q.Push(1);
  q.Close();
  EXPECT_FALSE(q.Push(2));
  EXPECT_EQ(q.Pop().value(), 1);
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(BlockingQueueTest, PopWithTimeoutExpires) {
  BlockingQueue<int> q;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(q.PopWithTimeout(std::chrono::milliseconds(20)).has_value());
  EXPECT_GE(std::chrono::steady_clock::now() - start,
            std::chrono::milliseconds(15));
}

TEST(BlockingQueueTest, TryPopNonBlocking) {
  BlockingQueue<int> q;
  EXPECT_FALSE(q.TryPop().has_value());
  q.Push(5);
  EXPECT_EQ(q.TryPop().value(), 5);
}

TEST(BlockingQueueTest, DrainIntoMovesEverything) {
  BlockingQueue<int> q;
  for (int i = 0; i < 5; ++i) q.Push(i);
  std::vector<int> out;
  EXPECT_EQ(q.DrainInto(&out), 5u);
  EXPECT_EQ(out.size(), 5u);
  EXPECT_TRUE(q.empty());
}

TEST(BlockingQueueTest, ConcurrentProducersConsumers) {
  BlockingQueue<int> q;
  constexpr int kPerProducer = 5000;
  constexpr int kProducers = 4;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) q.Push(p * kPerProducer + i);
    });
  }
  std::atomic<int> consumed{0};
  std::vector<std::thread> consumers;
  for (int c = 0; c < 2; ++c) {
    consumers.emplace_back([&] {
      while (auto item = q.Pop()) {
        consumed.fetch_add(1);
      }
    });
  }
  for (auto& t : producers) t.join();
  while (consumed.load() < kProducers * kPerProducer) {
    std::this_thread::yield();
  }
  q.Close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(consumed.load(), kProducers * kPerProducer);
}

TEST(BoundedQueueTest, BlocksProducerWhenFull) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3));  // full
  std::thread producer([&] { EXPECT_TRUE(q.Push(3)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(q.Pop().value(), 1);  // frees a slot, unblocks producer
  producer.join();
  EXPECT_EQ(q.size(), 2u);
}

TEST(BoundedQueueTest, CloseUnblocksProducer) {
  BoundedQueue<int> q(1);
  q.Push(1);
  std::thread producer([&] { EXPECT_FALSE(q.Push(2)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.Close();
  producer.join();
}

// --------------------------------------------------------------- Logging

TEST(LoggingTest, LevelGating) {
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // Suppressed statement must still compile and stream.
  DECO_LOG(DEBUG) << "suppressed " << 42;
  SetLogLevel(before);
}

TEST(LoggingTest, LogLevelFromStringParsesEveryLevel) {
  struct Case {
    const char* name;
    LogLevel level;
  };
  for (const Case& c : {Case{"debug", LogLevel::kDebug},
                        Case{"info", LogLevel::kInfo},
                        Case{"warning", LogLevel::kWarning},
                        Case{"warn", LogLevel::kWarning},
                        Case{"error", LogLevel::kError},
                        Case{"fatal", LogLevel::kFatal}}) {
    auto level = LogLevelFromString(c.name);
    ASSERT_TRUE(level.ok()) << c.name;
    EXPECT_EQ(*level, c.level) << c.name;
  }
}

TEST(LoggingTest, LogLevelFromStringIsCaseInsensitive) {
  auto level = LogLevelFromString("WARNING");
  ASSERT_TRUE(level.ok());
  EXPECT_EQ(*level, LogLevel::kWarning);
  level = LogLevelFromString("Debug");
  ASSERT_TRUE(level.ok());
  EXPECT_EQ(*level, LogLevel::kDebug);
}

TEST(LoggingTest, LogLevelFromStringRejectsUnknown) {
  EXPECT_TRUE(LogLevelFromString("verbose").status().IsInvalidArgument());
  EXPECT_TRUE(LogLevelFromString("").status().IsInvalidArgument());
}

}  // namespace
}  // namespace deco
