// End-to-end telemetry test: runs a small deco-async experiment with the
// live-telemetry layer enabled and checks the collected time series, the
// window-lifecycle spans and the exported JSON document (validated with a
// minimal structural JSON parser — no external dependency).

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <string>

#include "harness/experiment.h"
#include "obs/export.h"

namespace deco {
namespace {

// ------------------------------------------------ minimal JSON validation

/// Strict recursive-descent JSON syntax checker. Returns true iff `text`
/// is one complete, well-formed JSON value.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  bool Value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
      }
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool Number() {
    const size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (std::isdigit(Peek())) ++pos_;
    if (Peek() == '.') {
      ++pos_;
      while (std::isdigit(Peek())) ++pos_;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      while (std::isdigit(Peek())) ++pos_;
    }
    return pos_ > start && std::isdigit(s_[pos_ - 1]);
  }

  bool Literal(const char* word) {
    const size_t len = std::char_traits<char>::length(word);
    if (s_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  char Peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < s_.size() && std::isspace(s_[pos_])) ++pos_;
  }

  const std::string& s_;
  size_t pos_ = 0;
};

TEST(JsonCheckerTest, AcceptsAndRejects) {
  EXPECT_TRUE(JsonChecker("{\"a\": [1, 2.5, -3e2], \"b\": null}").Valid());
  EXPECT_TRUE(JsonChecker("[]").Valid());
  EXPECT_FALSE(JsonChecker("{\"a\": }").Valid());
  EXPECT_FALSE(JsonChecker("{\"a\": 1,}").Valid());
  EXPECT_FALSE(JsonChecker("{") .Valid());
  EXPECT_FALSE(JsonChecker("1 2").Valid());
}

// ------------------------------------------------------------ end to end

ExperimentConfig SmallConfig() {
  ExperimentConfig config;
  config.scheme = Scheme::kDecoAsync;
  config.query.window = WindowSpec::CountTumbling(10'000);
  config.query.aggregate = AggregateKind::kSum;
  config.num_locals = 2;
  config.streams_per_local = 2;
  config.events_per_local = 100'000;
  config.base_rate = 1e6;
  config.rate_change = 0.01;
  config.batch_size = 2048;
  config.seed = 7;
  return config;
}

std::string ReadFileOrDie(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  EXPECT_NE(f, nullptr) << path;
  std::string content;
  char buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    content.append(buf, n);
  }
  std::fclose(f);
  return content;
}

TEST(TelemetryIntegrationTest, DecoAsyncRunProducesSamplesSpansAndJson) {
  const std::string json_path =
      ::testing::TempDir() + "/telemetry_integration.json";
  TelemetryLog log;

  ExperimentConfig config = SmallConfig();
  config.telemetry.enabled = true;
  config.telemetry.sample_interval_nanos = 10 * kNanosPerMilli;
  config.telemetry.json_out = json_path;
  config.telemetry.sink = &log;

  auto report = RunExperiment(config);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->windows_emitted, 0u);

  // The sampler guarantees a snapshot at Start and one at Stop.
  ASSERT_GE(log.samples.size(), 2u);
  const TelemetrySample& last = log.samples.back();
  ASSERT_EQ(last.nodes.size(), 3u);  // root + 2 locals
  EXPECT_EQ(last.nodes[0].name, "root");
  EXPECT_GT(last.nodes[0].bytes_received, 0u);
  EXPECT_GT(last.nodes[1].bytes_sent, 0u);

  // The run emitted windows, so the instrumentation counted them and at
  // least the emit spans were recorded.
#if DECO_TRACE_ENABLED
  ASSERT_GE(log.spans.size(), 1u);
  bool saw_emit = false;
  for (const TraceEvent& span : log.spans) {
    if (span.phase == TracePhase::kEmit) saw_emit = true;
  }
  EXPECT_TRUE(saw_emit);
#endif
  int64_t windows_counted = 0;
  for (const auto& [name, value] : last.metrics.counters) {
    if (name == "root.windows_emitted") windows_counted = value;
  }
  EXPECT_EQ(windows_counted,
            static_cast<int64_t>(report->windows_emitted));

  // Exported document: well-formed JSON with the schema's key fields.
  const std::string json = ReadFileOrDie(json_path);
  EXPECT_TRUE(JsonChecker(json).Valid());
  EXPECT_NE(json.find("\"schema_version\": 7"), std::string::npos);
  // Schema v6: the alerts section is always present, disabled and empty
  // when no watchdog ran.
  EXPECT_NE(json.find("\"alerts\""), std::string::npos);
  EXPECT_NE(json.find("\"serving\""), std::string::npos);
  EXPECT_NE(json.find("\"cpu_breakdown\""), std::string::npos);
  EXPECT_NE(json.find("\"provenance_summary\""), std::string::npos);
  EXPECT_NE(json.find("\"scheme\": \"deco-async\""), std::string::npos);
  EXPECT_NE(json.find("\"queue_depth\""), std::string::npos);
  EXPECT_NE(json.find("\"bytes_per_sec\""), std::string::npos);
  EXPECT_NE(json.find("\"events_per_sec\""), std::string::npos);
  EXPECT_NE(json.find("\"sent_by_type\""), std::string::npos);
  EXPECT_NE(json.find("\"latency_breakdown\""), std::string::npos);
  EXPECT_NE(json.find("\"hop_count\""), std::string::npos);
#if DECO_TRACE_ENABLED
  EXPECT_NE(json.find("\"phase\": \"emit\""), std::string::npos);
  // With tracing compiled in, a live run collects hop records and the
  // critical-path analyzer attributes the emitted windows.
  EXPECT_FALSE(log.hops.empty());
  EXPECT_NE(json.find("\"windows_attributed\""), std::string::npos);
#endif
  std::remove(json_path.c_str());
}

TEST(TelemetryIntegrationTest, DisabledTelemetryLeavesSinkEmpty) {
  TelemetryLog log;
  ExperimentConfig config = SmallConfig();
  config.events_per_local = 20'000;
  config.telemetry.sink = &log;  // enabled stays false
  auto report = RunExperiment(config);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(log.samples.empty());
  EXPECT_TRUE(log.spans.empty());
  EXPECT_TRUE(log.hops.empty());
}

TEST(TelemetryIntegrationTest, CentralizedSchemeAlsoTraced) {
  TelemetryLog log;
  ExperimentConfig config = SmallConfig();
  config.scheme = Scheme::kCentral;
  config.events_per_local = 40'000;
  config.telemetry.enabled = true;
  config.telemetry.sink = &log;
  auto report = RunExperiment(config);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_GE(log.samples.size(), 2u);
#if DECO_TRACE_ENABLED
  EXPECT_GE(log.spans.size(), 1u);
#endif
}

}  // namespace
}  // namespace deco
