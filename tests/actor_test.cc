#include <gtest/gtest.h>

#include <atomic>
#include <chrono>

#include "node/actor.h"
#include "node/runtime.h"
#include "node/topology.h"
#include "sim/scheduler.h"

namespace deco {
namespace {

// Minimal actor that counts received messages and echoes them back.
class EchoActor final : public Actor {
 public:
  EchoActor(NetworkFabric* fabric, NodeId id, Clock* clock)
      : Actor(fabric, id, clock) {}

  std::atomic<int> received{0};

 protected:
  Status Run() override {
    while (!stop_requested()) {
      std::optional<Message> msg = Receive();
      if (!msg.has_value()) break;
      if (msg->type == MessageType::kShutdown) break;
      received.fetch_add(1);
      Message reply;
      reply.type = MessageType::kPartialResult;
      reply.dst = msg->src;
      reply.window_index = msg->window_index;
      DECO_RETURN_NOT_OK(Send(std::move(reply)));
    }
    return Status::OK();
  }
};

class FailingActor final : public Actor {
 public:
  using Actor::Actor;

 protected:
  Status Run() override { return Status::Internal("deliberate failure"); }
};

TEST(ActorTest, EchoesThroughFabric) {
  NetworkFabric fabric(SystemClock::Default(), 1);
  const NodeId tester = fabric.RegisterNode("tester");
  const NodeId echo_id = fabric.RegisterNode("echo");
  EchoActor echo(&fabric, echo_id, SystemClock::Default());
  echo.Start();

  for (int i = 0; i < 10; ++i) {
    Message msg;
    msg.type = MessageType::kEventRate;
    msg.src = tester;
    msg.dst = echo_id;
    msg.window_index = i;
    ASSERT_TRUE(fabric.Send(std::move(msg)).ok());
  }
  for (int i = 0; i < 10; ++i) {
    auto reply = fabric.mailbox(tester)->PopWithTimeout(
        std::chrono::seconds(5));
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(reply->window_index, static_cast<uint64_t>(i));
    EXPECT_EQ(reply->src, echo_id);
  }
  echo.RequestStop();
  echo.Join();
  EXPECT_EQ(echo.received.load(), 10);
  EXPECT_TRUE(echo.status().ok());
}

TEST(ActorTest, StatusReportsRunFailure) {
  NetworkFabric fabric(SystemClock::Default(), 1);
  const NodeId id = fabric.RegisterNode("failing");
  FailingActor actor(&fabric, id, SystemClock::Default());
  actor.Start();
  actor.Join();
  EXPECT_TRUE(actor.status().IsInternal());
}

TEST(ActorTest, RequestStopWakesBlockedReceive) {
  // Simulation-driven: the actor provably parks in Receive() — virtual
  // time cannot reach the 20ms stop event while the actor is runnable —
  // so no wall-clock sleep is needed to get it blocked first.
  SimScheduler sim(1);
  NetworkFabric fabric(sim.clock(), 1);
  fabric.SetSimScheduler(&sim);
  const NodeId id = fabric.RegisterNode("blocked");
  EchoActor actor(&fabric, id, sim.clock());
  actor.Start();
  sim.ScheduleAt(20 * kNanosPerMilli,
                 [&] { actor.RequestStop(); });  // closes the mailbox
  EXPECT_TRUE(sim.RunUntilTaskDone(actor.sim_task()).ok());
  actor.Join();
  EXPECT_TRUE(actor.status().ok());
  EXPECT_EQ(sim.Now(), 20 * kNanosPerMilli);
}

TEST(RuntimeTest, JoinAllPropagatesFirstError) {
  NetworkFabric fabric(SystemClock::Default(), 1);
  const NodeId ok_id = fabric.RegisterNode("ok");
  const NodeId bad_id = fabric.RegisterNode("bad");
  Runtime runtime(&fabric);
  runtime.AddActor(
      std::make_unique<EchoActor>(&fabric, ok_id, SystemClock::Default()));
  runtime.AddActor(std::make_unique<FailingActor>(&fabric, bad_id,
                                                  SystemClock::Default()));
  runtime.StartAll();
  runtime.StopAll();
  EXPECT_TRUE(runtime.JoinAll().IsInternal());
}

TEST(TopologyTest, OrdinalLookup) {
  Topology topology;
  topology.root = 0;
  topology.locals = {3, 5, 9};
  EXPECT_EQ(topology.OrdinalOf(5).value(), 1u);
  EXPECT_EQ(topology.OrdinalOf(9).value(), 2u);
  EXPECT_TRUE(topology.OrdinalOf(0).status().IsNotFound());
  EXPECT_EQ(topology.num_locals(), 3u);
}

}  // namespace
}  // namespace deco
