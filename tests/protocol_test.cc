#include <gtest/gtest.h>

#include "node/apportion.h"
#include "node/protocol.h"
#include "node/query.h"

namespace deco {
namespace {

// ------------------------------------------------------- Payload codecs

TEST(ProtocolTest, SliceSummaryRoundTrip) {
  SliceSummary summary;
  summary.partial.kind = AggregateKind::kSum;
  summary.partial.sum = 123.5;
  summary.partial.count = 42;
  summary.event_count = 42;
  summary.min_ts = 100;
  summary.max_ts = 900;
  summary.max_stream_id = 3;
  summary.max_event_id = 777;
  summary.event_rate = 1234.5;

  BinaryWriter writer;
  EncodeSliceSummary(summary, &writer);
  BinaryReader reader(writer.buffer());
  const SliceSummary decoded = DecodeSliceSummary(&reader).value();
  EXPECT_EQ(decoded.event_count, summary.event_count);
  EXPECT_EQ(decoded.min_ts, summary.min_ts);
  EXPECT_EQ(decoded.max_ts, summary.max_ts);
  EXPECT_EQ(decoded.max_stream_id, summary.max_stream_id);
  EXPECT_EQ(decoded.max_event_id, summary.max_event_id);
  EXPECT_DOUBLE_EQ(decoded.event_rate, summary.event_rate);
  EXPECT_DOUBLE_EQ(decoded.partial.sum, summary.partial.sum);
  EXPECT_TRUE(reader.AtEnd());
}

TEST(ProtocolTest, WindowAssignmentRoundTrip) {
  WindowAssignment assignment;
  assignment.window_index = 17;
  assignment.local_window_size = 123456;
  assignment.delta = 789;
  assignment.size_adjust = -55;
  assignment.wm_ts = 987654321;
  assignment.wm_stream = 6;
  assignment.wm_id = 12345;

  BinaryWriter writer;
  EncodeWindowAssignment(assignment, &writer);
  BinaryReader reader(writer.buffer());
  const WindowAssignment decoded = DecodeWindowAssignment(&reader).value();
  EXPECT_EQ(decoded.window_index, assignment.window_index);
  EXPECT_EQ(decoded.local_window_size, assignment.local_window_size);
  EXPECT_EQ(decoded.delta, assignment.delta);
  EXPECT_EQ(decoded.size_adjust, assignment.size_adjust);
  EXPECT_EQ(decoded.wm_ts, assignment.wm_ts);
  EXPECT_EQ(decoded.wm_stream, assignment.wm_stream);
  EXPECT_EQ(decoded.wm_id, assignment.wm_id);
}

TEST(ProtocolTest, RateReportRoundTrip) {
  RateReport report;
  report.window_index = 3;
  report.event_rate = 99.25;
  report.stream_position = 4096;
  report.incarnation = 2;
  BinaryWriter writer;
  EncodeRateReport(report, &writer);
  BinaryReader reader(writer.buffer());
  const RateReport decoded = DecodeRateReport(&reader).value();
  EXPECT_EQ(decoded.window_index, 3u);
  EXPECT_DOUBLE_EQ(decoded.event_rate, 99.25);
  EXPECT_EQ(decoded.stream_position, 4096u);
  EXPECT_EQ(decoded.incarnation, 2u);
}

TEST(ProtocolTest, CorrectionRequestRoundTrip) {
  CorrectionRequest request;
  request.window_index = 8;
  request.topup_events = 4096;
  // The root's watermark rides along so a rejoining local can discard
  // retained events at or below it (already covered by emitted windows).
  request.wm_ts = 123456789;
  request.wm_stream = 7;
  request.wm_id = 42;
  BinaryWriter writer;
  EncodeCorrectionRequest(request, &writer);
  BinaryReader reader(writer.buffer());
  const CorrectionRequest decoded = DecodeCorrectionRequest(&reader).value();
  EXPECT_EQ(decoded.window_index, 8u);
  EXPECT_EQ(decoded.topup_events, 4096u);
  EXPECT_EQ(decoded.wm_ts, 123456789);
  EXPECT_EQ(decoded.wm_stream, 7u);
  EXPECT_EQ(decoded.wm_id, 42u);
}

TEST(ProtocolTest, CorrectionResponseRoundTrip) {
  CorrectionResponse response;
  response.window_index = 5;
  response.from_offset = 1000;
  response.end_of_stream = true;
  for (int i = 0; i < 10; ++i) {
    Event e;
    e.id = i;
    e.stream_id = 1;
    e.value = i * 0.5;
    e.timestamp = 100 + i;
    response.events.push_back(e);
  }
  BinaryWriter writer;
  EncodeCorrectionResponse(response, &writer);
  BinaryReader reader(writer.buffer());
  const CorrectionResponse decoded =
      DecodeCorrectionResponse(&reader).value();
  EXPECT_EQ(decoded.window_index, 5u);
  EXPECT_EQ(decoded.from_offset, 1000u);
  EXPECT_TRUE(decoded.end_of_stream);
  EXPECT_EQ(decoded.events, response.events);
}

TEST(ProtocolTest, EventBatchRoundTripWithRole) {
  EventBatchPayload batch;
  batch.from_offset = 12345;
  batch.end_of_stream = false;
  batch.role = BatchRole::kFront;
  Event e;
  e.id = 9;
  e.timestamp = 77;
  batch.events.push_back(e);

  BinaryWriter writer;
  EncodeEventBatch(batch, &writer);
  BinaryReader reader(writer.buffer());
  const EventBatchPayload decoded = DecodeEventBatch(&reader).value();
  EXPECT_EQ(decoded.from_offset, 12345u);
  EXPECT_FALSE(decoded.end_of_stream);
  EXPECT_EQ(decoded.role, BatchRole::kFront);
  EXPECT_EQ(decoded.events, batch.events);
}

TEST(ProtocolTest, EventBatchTextRoundTrip) {
  EventBatchPayload batch;
  batch.from_offset = 7;
  batch.end_of_stream = true;
  for (int i = 0; i < 5; ++i) {
    Event e;
    e.id = i;
    e.stream_id = 2;
    e.value = 1.5 * i;
    e.timestamp = 50 + i;
    batch.events.push_back(e);
  }
  const EventBatchPayload decoded =
      DecodeEventBatchText(EncodeEventBatchText(batch)).value();
  EXPECT_EQ(decoded.from_offset, 7u);
  EXPECT_TRUE(decoded.end_of_stream);
  ASSERT_EQ(decoded.events.size(), 5u);
  EXPECT_EQ(decoded.events[4].timestamp, 54);
}

TEST(ProtocolTest, MalformedInputsAreErrors) {
  // BinaryReader holds a reference to the buffer, so it must be a named
  // lvalue that outlives the reader.
  const std::string empty;
  BinaryReader empty_reader(empty);
  EXPECT_FALSE(DecodeSliceSummary(&empty_reader).ok());
  BinaryReader empty_reader2(empty);
  EXPECT_FALSE(DecodeWindowAssignment(&empty_reader2).ok());
  EXPECT_FALSE(DecodeEventBatchText("no newline").ok());
  EXPECT_FALSE(DecodeEventBatchText("wrong;header\n").ok());
  // A bad role byte must be rejected.
  BinaryWriter writer;
  writer.PutU64(0);
  writer.PutU8(0);
  writer.PutU8(9);  // invalid role
  writer.PutU64(0);
  BinaryReader reader(writer.buffer());
  EXPECT_FALSE(DecodeEventBatch(&reader).ok());
}

TEST(ProtocolTest, QueryConfigRoundTrip) {
  QueryConfig config;
  config.window = WindowSpec::CountSliding(1000, 500);
  config.aggregate = AggregateKind::kAvg;
  config.quantile_q = 0.9;
  BinaryWriter writer;
  EncodeQueryConfig(config, &writer);
  BinaryReader reader(writer.buffer());
  const QueryConfig decoded = DecodeQueryConfig(&reader).value();
  EXPECT_EQ(decoded.window.type, WindowType::kSliding);
  EXPECT_EQ(decoded.window.length, 1000u);
  EXPECT_EQ(decoded.window.slide, 500u);
  EXPECT_EQ(decoded.aggregate, AggregateKind::kAvg);
  EXPECT_DOUBLE_EQ(decoded.quantile_q, 0.9);
}

TEST(ProtocolTest, QueryConfigDecodeValidates) {
  QueryConfig config;
  config.window = WindowSpec::CountTumbling(0);  // invalid length
  BinaryWriter writer;
  EncodeQueryConfig(config, &writer);
  BinaryReader reader(writer.buffer());
  EXPECT_FALSE(DecodeQueryConfig(&reader).ok());
}

// ------------------------------------------------------------ Apportion

TEST(ApportionTest, SumsExactlyToTotal) {
  const auto shares = ApportionWindow(1000, {1.2e6, 0.8e6}).value();
  EXPECT_EQ(shares[0] + shares[1], 1000u);
  // The paper's example: 1.2M and 0.8M rates split 1M as 0.6M / 0.4M.
  EXPECT_EQ(shares[0], 600u);
  EXPECT_EQ(shares[1], 400u);
}

TEST(ApportionTest, LargestRemainderHandlesFractions) {
  const auto shares = ApportionWindow(10, {1.0, 1.0, 1.0}).value();
  EXPECT_EQ(shares[0] + shares[1] + shares[2], 10u);
  // 10/3: two nodes get 3, one gets 4 (deterministic tie-break).
  std::vector<uint64_t> sorted = shares;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted[0], 3u);
  EXPECT_EQ(sorted[2], 4u);
}

TEST(ApportionTest, ZeroWeightsSplitEvenly) {
  const auto shares = ApportionWindow(9, {0.0, 0.0, 0.0}).value();
  EXPECT_EQ(shares[0] + shares[1] + shares[2], 9u);
}

TEST(ApportionTest, RejectsInvalidWeights) {
  EXPECT_FALSE(ApportionWindow(10, {}).ok());
  EXPECT_FALSE(ApportionWindow(10, {-1.0, 2.0}).ok());
  EXPECT_FALSE(
      ApportionWindow(10, {std::numeric_limits<double>::infinity()}).ok());
}

TEST(ApportionTest, DeterministicAcrossCalls) {
  const std::vector<double> weights{3.1, 2.9, 4.05, 1.95};
  const auto a = ApportionWindow(12345, weights).value();
  const auto b = ApportionWindow(12345, weights).value();
  EXPECT_EQ(a, b);
}

// Property sweep: proportionality within one unit for many weight shapes.
class ApportionProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ApportionProperty, SharesAreProportionalWithinOneUnit) {
  const uint64_t total = GetParam();
  const std::vector<double> weights{5.0, 3.0, 2.0};
  const auto shares = ApportionWindow(total, weights).value();
  uint64_t sum = 0;
  for (size_t i = 0; i < weights.size(); ++i) {
    const double exact = total * weights[i] / 10.0;
    EXPECT_NEAR(static_cast<double>(shares[i]), exact, 1.0) << "i=" << i;
    sum += shares[i];
  }
  EXPECT_EQ(sum, total);
}

INSTANTIATE_TEST_SUITE_P(Totals, ApportionProperty,
                         ::testing::Values(1, 7, 10, 99, 1000, 999'983,
                                           1'000'000));

}  // namespace
}  // namespace deco
