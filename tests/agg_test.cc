#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "agg/aggregate.h"
#include "common/random.h"

namespace deco {
namespace {

std::unique_ptr<AggregateFunction> Make(AggregateKind kind, double q = 0.5) {
  auto result = MakeAggregate(kind, q);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

// ----------------------------------------------------------- Name parsing

TEST(AggregateNameTest, RoundTripsAllKinds) {
  for (AggregateKind kind :
       {AggregateKind::kSum, AggregateKind::kCount, AggregateKind::kMin,
        AggregateKind::kMax, AggregateKind::kAvg, AggregateKind::kMedian,
        AggregateKind::kQuantile}) {
    auto parsed =
        AggregateKindFromString(std::string(AggregateKindToString(kind)));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(AggregateKindFromString("variance").ok());
}

// -------------------------------------------------------- Basic semantics

TEST(AggregateTest, SumAccumulates) {
  auto f = Make(AggregateKind::kSum);
  Partial p = f->CreatePartial();
  for (double v : {1.0, 2.0, 3.5}) f->Accumulate(&p, v);
  EXPECT_DOUBLE_EQ(f->Finalize(p), 6.5);
  EXPECT_EQ(p.count, 3u);
}

TEST(AggregateTest, CountIgnoresValues) {
  auto f = Make(AggregateKind::kCount);
  Partial p = f->CreatePartial();
  for (double v : {-5.0, 100.0, 0.0}) f->Accumulate(&p, v);
  EXPECT_DOUBLE_EQ(f->Finalize(p), 3.0);
}

TEST(AggregateTest, MinAndMax) {
  auto fmin = Make(AggregateKind::kMin);
  auto fmax = Make(AggregateKind::kMax);
  Partial pmin = fmin->CreatePartial();
  Partial pmax = fmax->CreatePartial();
  for (double v : {3.0, -7.0, 12.0, 0.5}) {
    fmin->Accumulate(&pmin, v);
    fmax->Accumulate(&pmax, v);
  }
  EXPECT_DOUBLE_EQ(fmin->Finalize(pmin), -7.0);
  EXPECT_DOUBLE_EQ(fmax->Finalize(pmax), 12.0);
}

TEST(AggregateTest, AvgIsAlgebraicFromSumAndCount) {
  auto f = Make(AggregateKind::kAvg);
  EXPECT_EQ(f->decomposability(), Decomposability::kAlgebraic);
  Partial p = f->CreatePartial();
  for (double v : {1.0, 2.0, 3.0, 4.0}) f->Accumulate(&p, v);
  EXPECT_DOUBLE_EQ(f->Finalize(p), 2.5);
}

TEST(AggregateTest, AvgOfEmptyIsNan) {
  auto f = Make(AggregateKind::kAvg);
  Partial p = f->CreatePartial();
  EXPECT_TRUE(std::isnan(f->Finalize(p)));
}

TEST(AggregateTest, MedianOddAndEven) {
  auto f = Make(AggregateKind::kMedian);
  EXPECT_EQ(f->decomposability(), Decomposability::kHolistic);
  Partial p = f->CreatePartial();
  for (double v : {5.0, 1.0, 3.0}) f->Accumulate(&p, v);
  EXPECT_DOUBLE_EQ(f->Finalize(p), 3.0);
  f->Accumulate(&p, 7.0);
  EXPECT_DOUBLE_EQ(f->Finalize(p), 4.0);  // interpolated between 3 and 5
}

TEST(AggregateTest, QuantileMatchesSortedPosition) {
  auto f = Make(AggregateKind::kQuantile, 0.25);
  Partial p = f->CreatePartial();
  for (int i = 0; i <= 100; ++i) f->Accumulate(&p, i);
  EXPECT_NEAR(f->Finalize(p), 25.0, 1e-9);
}

TEST(AggregateTest, QuantileRejectsBadQ) {
  EXPECT_FALSE(MakeAggregate(AggregateKind::kQuantile, 0.0).ok());
  EXPECT_FALSE(MakeAggregate(AggregateKind::kQuantile, 1.0).ok());
  EXPECT_FALSE(MakeAggregate(AggregateKind::kQuantile, -0.5).ok());
}

TEST(AggregateTest, MergeRejectsKindMismatch) {
  auto fsum = Make(AggregateKind::kSum);
  auto fmin = Make(AggregateKind::kMin);
  Partial a = fsum->CreatePartial();
  Partial b = fmin->CreatePartial();
  EXPECT_TRUE(fsum->Merge(&a, b).IsInvalidArgument());
}

TEST(AggregateTest, DecomposabilityClassification) {
  EXPECT_TRUE(Make(AggregateKind::kSum)->IsDecomposable());
  EXPECT_TRUE(Make(AggregateKind::kAvg)->IsDecomposable());
  EXPECT_FALSE(Make(AggregateKind::kMedian)->IsDecomposable());
}

// ------------------------------------------------ Partial serialization

TEST(PartialSerdeTest, RoundTripWithValues) {
  auto f = Make(AggregateKind::kMedian);
  Partial p = f->CreatePartial();
  for (double v : {9.0, -1.0, 4.5}) f->Accumulate(&p, v);
  BinaryWriter writer;
  EncodePartial(p, &writer);
  EXPECT_EQ(writer.size(), p.WireSize());
  BinaryReader reader(writer.buffer());
  Partial decoded = DecodePartial(&reader).value();
  EXPECT_EQ(decoded.kind, p.kind);
  EXPECT_EQ(decoded.count, p.count);
  EXPECT_EQ(decoded.values, p.values);
  EXPECT_DOUBLE_EQ(f->Finalize(decoded), f->Finalize(p));
}

TEST(PartialSerdeTest, BadKindByteIsError) {
  BinaryWriter writer;
  writer.PutU8(99);
  BinaryReader reader(writer.buffer());
  EXPECT_FALSE(DecodePartial(&reader).ok());
}

TEST(PartialSerdeTest, HugeValueCountIsRejected) {
  auto f = Make(AggregateKind::kSum);
  Partial p = f->CreatePartial();
  BinaryWriter writer;
  EncodePartial(p, &writer);
  // Corrupt the value-count field (last 8 bytes of the fixed prefix).
  std::string buf = writer.buffer();
  buf.resize(buf.size() - 8);
  BinaryWriter corrupted;
  corrupted.PutU64(1ull << 60);
  buf += corrupted.buffer();
  BinaryReader reader(buf);
  EXPECT_TRUE(DecodePartial(&reader).status().IsOutOfRange());
}

// --------------------------------------- Property: decomposition is exact
//
// For every decomposable aggregate and any split of the input into
// contiguous chunks, accumulating chunks into separate partials and
// merging them must give the same result as one pass over everything —
// the invariant Deco's slices rely on (paper §2.3).

class DecompositionProperty
    : public ::testing::TestWithParam<std::tuple<AggregateKind, size_t>> {};

TEST_P(DecompositionProperty, SplitMergeEqualsWholePass) {
  const auto [kind, chunks] = GetParam();
  auto f = Make(kind);
  Rng rng(static_cast<uint64_t>(chunks) * 31 +
          static_cast<uint64_t>(kind));
  std::vector<double> values;
  for (int i = 0; i < 1000; ++i) values.push_back(rng.NextDouble(-50, 50));

  Partial whole = f->CreatePartial();
  for (double v : values) f->Accumulate(&whole, v);

  Partial merged = f->CreatePartial();
  const size_t chunk_size = (values.size() + chunks - 1) / chunks;
  for (size_t start = 0; start < values.size(); start += chunk_size) {
    Partial part = f->CreatePartial();
    const size_t end = std::min(values.size(), start + chunk_size);
    for (size_t i = start; i < end; ++i) f->Accumulate(&part, values[i]);
    ASSERT_TRUE(f->Merge(&merged, part).ok());
  }
  EXPECT_NEAR(f->Finalize(merged), f->Finalize(whole),
              1e-9 * std::max(1.0, std::abs(f->Finalize(whole))));
  EXPECT_EQ(merged.count, whole.count);
}

INSTANTIATE_TEST_SUITE_P(
    AllDecomposableKindsAndSplits, DecompositionProperty,
    ::testing::Combine(::testing::Values(AggregateKind::kSum,
                                         AggregateKind::kCount,
                                         AggregateKind::kMin,
                                         AggregateKind::kMax,
                                         AggregateKind::kAvg),
                       ::testing::Values(1, 2, 3, 7, 100)));

// Merging is commutative for all supported kinds.
class MergeCommutativity : public ::testing::TestWithParam<AggregateKind> {};

TEST_P(MergeCommutativity, OrderDoesNotMatter) {
  auto f = Make(GetParam());
  Rng rng(99);
  Partial a = f->CreatePartial();
  Partial b = f->CreatePartial();
  for (int i = 0; i < 100; ++i) f->Accumulate(&a, rng.NextDouble(-10, 10));
  for (int i = 0; i < 37; ++i) f->Accumulate(&b, rng.NextDouble(-10, 10));

  Partial ab = f->CreatePartial();
  ASSERT_TRUE(f->Merge(&ab, a).ok());
  ASSERT_TRUE(f->Merge(&ab, b).ok());
  Partial ba = f->CreatePartial();
  ASSERT_TRUE(f->Merge(&ba, b).ok());
  ASSERT_TRUE(f->Merge(&ba, a).ok());
  EXPECT_DOUBLE_EQ(f->Finalize(ab), f->Finalize(ba));
}

INSTANTIATE_TEST_SUITE_P(AllKinds, MergeCommutativity,
                         ::testing::Values(AggregateKind::kSum,
                                           AggregateKind::kCount,
                                           AggregateKind::kMin,
                                           AggregateKind::kMax,
                                           AggregateKind::kAvg));

// Median decomposes exactly when the partials keep raw values (which is
// why it must be processed centrally: the partial *is* the data).
TEST(HolisticTest, MedianMergeKeepsAllValues) {
  auto f = Make(AggregateKind::kMedian);
  Partial a = f->CreatePartial();
  Partial b = f->CreatePartial();
  for (double v : {1.0, 9.0}) f->Accumulate(&a, v);
  for (double v : {5.0}) f->Accumulate(&b, v);
  Partial merged = f->CreatePartial();
  ASSERT_TRUE(f->Merge(&merged, a).ok());
  ASSERT_TRUE(f->Merge(&merged, b).ok());
  EXPECT_EQ(merged.values.size(), 3u);
  EXPECT_DOUBLE_EQ(f->Finalize(merged), 5.0);
}

}  // namespace
}  // namespace deco
