#include <gtest/gtest.h>

#include "baseline/root_merger.h"

namespace deco {
namespace {

Event MakeEvent(EventId id, StreamId stream, EventTime ts) {
  Event e;
  e.id = id;
  e.stream_id = stream;
  e.value = 1.0;
  e.timestamp = ts;
  return e;
}

TEST(RootMergerTest, StallsUntilEveryNodeHasInput) {
  RootMerger merger(2);
  merger.Append(0, {MakeEvent(0, 0, 10)}, 0.0);
  Event e;
  double create = 0;
  size_t node = 0;
  EXPECT_FALSE(merger.PopNext(&e, &create, &node));  // node 1 unknown
  merger.Append(1, {MakeEvent(0, 1, 15)}, 0.0);
  EXPECT_TRUE(merger.PopNext(&e, &create, &node));
  EXPECT_EQ(e.timestamp, 10);
  EXPECT_EQ(node, 0u);
  // Node 0's queue is now empty: merge stalls again.
  EXPECT_FALSE(merger.PopNext(&e, &create, &node));
}

TEST(RootMergerTest, EosUnblocksEmptyQueue) {
  RootMerger merger(2);
  merger.Append(0, {MakeEvent(0, 0, 10), MakeEvent(1, 0, 20)}, 0.0);
  merger.MarkEos(1);  // node 1 will never send anything
  Event e;
  double create = 0;
  size_t node = 0;
  EXPECT_TRUE(merger.PopNext(&e, &create, &node));
  EXPECT_TRUE(merger.PopNext(&e, &create, &node));
  EXPECT_FALSE(merger.PopNext(&e, &create, &node));
  merger.MarkEos(0);
  EXPECT_TRUE(merger.Drained());
}

TEST(RootMergerTest, AppendAfterEosStillMerges) {
  // The final batch of a node may arrive together with its EOS marker;
  // events appended before/after MarkEos must still drain.
  RootMerger merger(1);
  merger.Append(0, {MakeEvent(0, 0, 5)}, 0.0);
  merger.MarkEos(0);
  Event e;
  double create = 0;
  size_t node = 0;
  EXPECT_TRUE(merger.PopNext(&e, &create, &node));
  EXPECT_TRUE(merger.Drained());
}

TEST(RootMergerTest, GlobalOrderAcrossBatches) {
  RootMerger merger(3);
  // Interleaved timestamps across nodes, multiple batches per node.
  merger.Append(0, {MakeEvent(0, 0, 1), MakeEvent(1, 0, 4)}, 0.0);
  merger.Append(0, {MakeEvent(2, 0, 7)}, 0.0);
  merger.Append(1, {MakeEvent(0, 1, 2), MakeEvent(1, 1, 5)}, 0.0);
  merger.Append(2, {MakeEvent(0, 2, 3), MakeEvent(1, 2, 6)}, 0.0);
  merger.MarkEos(0);
  merger.MarkEos(1);
  merger.MarkEos(2);
  Event e;
  double create = 0;
  size_t node = 0;
  EventTime expected = 1;
  while (merger.PopNext(&e, &create, &node)) {
    EXPECT_EQ(e.timestamp, expected++);
  }
  EXPECT_EQ(expected, 8);
  EXPECT_TRUE(merger.Drained());
}

TEST(RootMergerTest, TimestampTiesBreakByStreamThenId) {
  RootMerger merger(2);
  merger.Append(0, {MakeEvent(5, 1, 10)}, 0.0);
  merger.Append(1, {MakeEvent(3, 0, 10)}, 0.0);
  merger.MarkEos(0);
  merger.MarkEos(1);
  Event e;
  double create = 0;
  size_t node = 0;
  ASSERT_TRUE(merger.PopNext(&e, &create, &node));
  EXPECT_EQ(e.stream_id, 0u);  // lower stream id first on equal timestamps
}

TEST(RootMergerTest, CreateTimesTravelWithBatches) {
  RootMerger merger(1);
  merger.Append(0, {MakeEvent(0, 0, 1)}, 111.0);
  merger.Append(0, {MakeEvent(1, 0, 2)}, 222.0);
  merger.MarkEos(0);
  Event e;
  double create = 0;
  size_t node = 0;
  ASSERT_TRUE(merger.PopNext(&e, &create, &node));
  EXPECT_DOUBLE_EQ(create, 111.0);
  ASSERT_TRUE(merger.PopNext(&e, &create, &node));
  EXPECT_DOUBLE_EQ(create, 222.0);
}

TEST(RootMergerTest, BufferedCountTracksContents) {
  RootMerger merger(2);
  EXPECT_EQ(merger.buffered(), 0u);
  merger.Append(0, {MakeEvent(0, 0, 1), MakeEvent(1, 0, 2)}, 0.0);
  EXPECT_EQ(merger.buffered(), 2u);
  merger.Append(1, {MakeEvent(0, 1, 3)}, 0.0);
  Event e;
  double create = 0;
  size_t node = 0;
  ASSERT_TRUE(merger.PopNext(&e, &create, &node));
  EXPECT_EQ(merger.buffered(), 2u);
}

TEST(RootMergerTest, EmptyAppendIsNoop) {
  RootMerger merger(1);
  merger.Append(0, {}, 0.0);
  EXPECT_EQ(merger.buffered(), 0u);
  merger.MarkEos(0);
  EXPECT_TRUE(merger.Drained());
}

}  // namespace
}  // namespace deco
