#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/queue.h"
#include "harness/experiment.h"
#include "metrics/report.h"
#include "sim/scheduler.h"

namespace deco {
namespace {

// Unit tests of the deterministic simulation scheduler (DESIGN.md §8) plus
// the harness-level determinism regression: byte-identical reports from
// identical (config, seed), diverging message orders across seeds.

TEST(SimSchedulerTest, VirtualSleepAdvancesClockWithoutWallTime) {
  SimScheduler sched(1);
  const SimTaskId id = sched.AddTask("sleeper");
  std::thread t([&] {
    sched.TaskMain(id, [&] {
      sched.SleepFor(5 * kNanosPerSecond);  // five virtual seconds
    });
  });
  EXPECT_TRUE(sched.RunUntilTaskDone(id).ok());
  t.join();
  EXPECT_EQ(sched.Now(), 5 * kNanosPerSecond);
}

TEST(SimSchedulerTest, TimerEventsFireInTimeThenScheduleOrder) {
  SimScheduler sched(1);
  std::vector<int> fired;
  const SimTaskId id = sched.AddTask("waiter");
  std::thread t([&] {
    sched.TaskMain(id, [&] { sched.SleepFor(100); });
  });
  sched.ScheduleAt(50, [&] { fired.push_back(2); });
  sched.ScheduleAt(10, [&] { fired.push_back(1); });
  sched.ScheduleAt(50, [&] { fired.push_back(3); });  // tie: schedule order
  EXPECT_TRUE(sched.RunUntilTaskDone(id).ok());
  t.join();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(SimSchedulerTest, DeadlockIsDetectedAndNamed) {
  SimScheduler sched(1);
  std::atomic<bool> release{false};
  const SimTaskId id = sched.AddTask("stuck-task");
  std::thread t([&] {
    sched.TaskMain(id, [&] {
      sched.WaitUntil([&] { return release.load(); }, TimeNanos{-1});
    });
  });
  const Status status = sched.RunUntilTaskDone(id);
  EXPECT_TRUE(status.IsInternal());
  EXPECT_NE(status.ToString().find("stuck-task"), std::string::npos)
      << status.ToString();
  release.store(true);  // unblock so the scheduler can wind down
  EXPECT_TRUE(sched.DrainAll().ok());
  t.join();
}

TEST(SimSchedulerTest, VirtualTimeLimitAborts) {
  SimScheduler sched(1);
  sched.SetVirtualTimeLimit(kNanosPerSecond);
  const SimTaskId id = sched.AddTask("long-sleeper");
  std::thread t([&] {
    sched.TaskMain(id, [&] { sched.SleepFor(10 * kNanosPerSecond); });
  });
  EXPECT_TRUE(sched.RunUntilTaskDone(id).IsTimeout());
  sched.SetVirtualTimeLimit(0);
  EXPECT_TRUE(sched.DrainAll().ok());
  t.join();
}

TEST(SimSchedulerTest, PopHonorsVirtualDeadlineAndClose) {
  SimScheduler sched(1);
  BlockingQueue<int> queue;
  std::optional<int> timed_out_value = 42;
  std::optional<int> delivered_value;
  const SimTaskId id = sched.AddTask("popper");
  std::thread t([&] {
    sched.TaskMain(id, [&] {
      // Nothing arrives before the deadline: returns nullopt at t=1000.
      timed_out_value = sched.Pop(&queue, TimeNanos{1000});
      // An event delivers an item at t=2000: Pop returns it.
      delivered_value = sched.Pop(&queue, TimeNanos{5000});
    });
  });
  sched.ScheduleAt(2000, [&] { queue.Push(7); });
  EXPECT_TRUE(sched.RunUntilTaskDone(id).ok());
  t.join();
  EXPECT_FALSE(timed_out_value.has_value());
  ASSERT_TRUE(delivered_value.has_value());
  EXPECT_EQ(*delivered_value, 7);
  EXPECT_EQ(sched.Now(), 2000);
}

TEST(SimSchedulerTest, InterleavingIsAPureFunctionOfSeed) {
  // Two yield-looping tasks: the grant sequence is the scheduler's seeded
  // choice alone. Same seed => identical sequence; different seed =>
  // different sequence (64 binary picks cannot all collide).
  const auto run = [](uint64_t seed) {
    SimScheduler sched(seed);
    std::vector<SimTaskId> order;
    std::mutex order_mu;
    std::vector<std::thread> threads;
    for (SimTaskId i = 0; i < 2; ++i) {
      const SimTaskId id = sched.AddTask("task-" + std::to_string(i));
      threads.emplace_back([&sched, &order, &order_mu, id] {
        sched.TaskMain(id, [&] {
          for (int k = 0; k < 32; ++k) {
            {
              std::lock_guard<std::mutex> lock(order_mu);
              order.push_back(id);
            }
            sched.Yield();
          }
        });
      });
    }
    EXPECT_TRUE(sched.DrainAll().ok());
    for (auto& t : threads) t.join();
    return order;
  };
  const auto a = run(7);
  const auto b = run(7);
  const auto c = run(8);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

ExperimentConfig SimConfig(uint64_t seed) {
  ExperimentConfig config;
  config.sim = true;
  config.scheme = Scheme::kDecoSync;
  config.query.window = WindowSpec::CountTumbling(2000);
  config.num_locals = 3;
  config.streams_per_local = 2;
  config.events_per_local = 30'000;
  config.base_rate = 50'000;
  config.rate_change = 0.05;
  config.batch_size = 512;
  config.seed = seed;
  return config;
}

TEST(SimDeterminismTest, SameSeedReplaysByteIdentically) {
  // ISSUE 4 satellite: the full RunReport JSON — window values, latency
  // histogram, fabric byte counters, the delivery-order hash — must be
  // byte-identical across two runs of the same (config, seed).
  auto first = RunExperiment(SimConfig(1234));
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto second = RunExperiment(SimConfig(1234));
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_GT(first->delivery_hash, 0u);
  EXPECT_EQ(first->delivery_hash, second->delivery_hash);
  EXPECT_EQ(first->network.total_bytes, second->network.total_bytes);
  EXPECT_EQ(first->network.total_messages, second->network.total_messages);
  EXPECT_EQ(RunReportJson(*first), RunReportJson(*second));
}

TEST(SimDeterminismTest, DifferentSeedsProduceDifferentMessageOrders) {
  auto a = RunExperiment(SimConfig(1234));
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  auto b = RunExperiment(SimConfig(4321));
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_NE(a->delivery_hash, b->delivery_hash);
  EXPECT_NE(RunReportJson(*a), RunReportJson(*b));
}

TEST(SimDeterminismTest, ChaosScheduleReplaysByteIdentically) {
  // Chaos actions become timer events on the same queue, so a faulty run
  // replays exactly too — including the membership timeline.
  auto config = SimConfig(99);
  config.cpu_events_per_sec = 20'000;  // pace so faults land mid-stream
  config.root_options.node_timeout_nanos = 120 * kNanosPerMilli;
  auto schedule = ChaosSchedule::Parse(
      "crash:local-1@200ms,restart:local-1@500ms");
  ASSERT_TRUE(schedule.ok());
  config.chaos.schedule = *schedule;
  auto first = RunExperiment(config);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto second = RunExperiment(config);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  ASSERT_GE(first->membership.size(), 2u)
      << "crash/restart did not produce membership churn";
  EXPECT_EQ(RunReportJson(*first), RunReportJson(*second));
}

TEST(SimDeterminismTest, SimClockOnlyMovesForward) {
  SimClock clock(100);
  EXPECT_EQ(clock.NowNanos(), 100);
  clock.AdvanceTo(50);  // past times are ignored
  EXPECT_EQ(clock.NowNanos(), 100);
  clock.AdvanceTo(200);
  EXPECT_EQ(clock.NowNanos(), 200);
}

}  // namespace
}  // namespace deco
