// Flight recorder tests: ring capacity and overwrite order, JSON dump
// shape (validated structurally — substring checks plus brace balance),
// the global install / hop-stamping interaction, and an end-to-end run
// whose dump parses and carries real hops and spans.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/clock.h"
#include "harness/experiment.h"
#include "net/fabric.h"
#include "obs/flight_recorder.h"
#include "obs/trace.h"

namespace deco {
namespace {

std::string ReadFileOrDie(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  EXPECT_NE(f, nullptr) << path;
  if (f == nullptr) return "";
  std::string content;
  char buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) content.append(buf, n);
  std::fclose(f);
  return content;
}

// Cheap structural check: balanced braces/brackets outside strings. The
// repo has no C++ JSON parser; CI re-parses the dump with python.
bool BalancedJson(const std::string& text) {
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '{' || c == '[') ++depth;
    else if (c == '}' || c == ']') {
      if (--depth < 0) return false;
    }
  }
  return depth == 0 && !in_string;
}

TraceEvent MakeSpan(uint64_t window_index, int64_t value) {
  TraceEvent event;
  event.t_nanos = static_cast<TimeNanos>(window_index) * 1000;
  event.node = 1;
  event.phase = TracePhase::kEmit;
  event.window_index = window_index;
  event.value = value;
  return event;
}

TEST(FlightRecorderTest, RingKeepsMostRecentInOrder) {
  ManualClock clock;
  FlightRecorder::Options options;
  options.span_capacity = 4;
  FlightRecorder recorder(&clock, options);

  for (uint64_t i = 0; i < 10; ++i) {
    const TraceEvent e = MakeSpan(i, static_cast<int64_t>(100 + i));
    recorder.RecordSpan(e.node, e.phase, e.window_index, e.value, 0);
  }
  EXPECT_EQ(recorder.spans_recorded(), 10u);

  const std::vector<TraceEvent> spans = recorder.Spans();
  ASSERT_EQ(spans.size(), 4u);  // capacity bound
  // Oldest-first: the 4 most recent records are 6, 7, 8, 9.
  for (size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].window_index, 6 + i);
    EXPECT_EQ(spans[i].value, static_cast<int64_t>(106 + i));
  }
}

TEST(FlightRecorderTest, PartialRingIsOldestFirstToo) {
  ManualClock clock;
  FlightRecorder::Options options;
  options.alert_capacity = 8;
  FlightRecorder recorder(&clock, options);

  for (int i = 0; i < 3; ++i) {
    AlertTransition t;
    t.t_nanos = i;
    t.kind = "window-stall";
    t.subject = "root";
    t.fired = true;
    recorder.RecordAlert(t);
  }
  const std::vector<AlertTransition> alerts = recorder.Alerts();
  ASSERT_EQ(alerts.size(), 3u);
  for (size_t i = 0; i < alerts.size(); ++i) {
    EXPECT_EQ(alerts[i].t_nanos, static_cast<TimeNanos>(i));
  }
}

TEST(FlightRecorderTest, ZeroCapacityRingRecordsNothing) {
  ManualClock clock;
  FlightRecorder::Options options;
  options.span_capacity = 0;
  FlightRecorder recorder(&clock, options);
  recorder.RecordSpan(1, TracePhase::kEmit, 1, 1, 0);
  EXPECT_EQ(recorder.spans_recorded(), 0u);
  EXPECT_TRUE(recorder.Spans().empty());
}

TEST(FlightRecorderTest, DumpJsonRoundTrips) {
  const std::string path = ::testing::TempDir() + "/flight_dump.json";
  std::remove(path.c_str());

  ManualClock clock;
  clock.Advance(42);
  FlightRecorder recorder(&clock);
  recorder.RecordSpan(2, TracePhase::kAssemble, 7, 1234, 99);
  AlertTransition t;
  t.t_nanos = 5;
  t.kind = "queue-growth";
  t.subject = "local-\"0\"";  // exercises string escaping
  t.fired = true;
  t.observed = 500;
  t.threshold = 100;
  recorder.RecordAlert(t);

  ASSERT_TRUE(recorder.DumpJson(path, "unit-test"));
  const std::string json = ReadFileOrDie(path);
  EXPECT_TRUE(BalancedJson(json)) << json.substr(0, 200);
  EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"reason\": \"unit-test\""), std::string::npos);
  EXPECT_NE(json.find("\"spans_recorded\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"alerts_recorded\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"phase\":\"assemble\""), std::string::npos);
  EXPECT_NE(json.find("\"window_index\":7"), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"queue-growth\""), std::string::npos);
  EXPECT_NE(json.find("local-\\\"0\\\""), std::string::npos)
      << "quotes in subjects must be escaped";
  std::remove(path.c_str());
}

TEST(FlightRecorderTest, DumpToUnwritablePathReturnsFalse) {
  ManualClock clock;
  FlightRecorder recorder(&clock);
  EXPECT_FALSE(recorder.DumpJson("/nonexistent-dir/x/y.json", "r"));
}

TEST(FlightRecorderTest, InstallControlsHopStamping) {
  // No sink, no recorder: stamping off. Installing a recorder turns it on
  // (messages need causal ids for the hop ring); uninstalling restores it.
  TraceSink* prev_sink = TraceSink::Install(nullptr);
  FlightRecorder* prev_recorder = FlightRecorder::Install(nullptr);
  EXPECT_EQ(FlightRecorder::Active(), nullptr);

  ManualClock clock;
  FlightRecorder recorder(&clock);
  FlightRecorder::Install(&recorder);
  EXPECT_EQ(FlightRecorder::Active(), &recorder);
#if DECO_TRACE_ENABLED
  EXPECT_TRUE(HopStampingEnabled());
#endif
  FlightRecorder::Install(nullptr);
  EXPECT_EQ(FlightRecorder::Active(), nullptr);
#if DECO_TRACE_ENABLED
  EXPECT_FALSE(HopStampingEnabled());
#endif

  TraceSink::Install(prev_sink);
  FlightRecorder::Install(prev_recorder);
}

// End to end: a small sim run with the recorder on dumps a document that
// contains real hops and spans from the run.
TEST(FlightRecorderIntegrationTest, SimRunDumpCarriesHopsAndSpans) {
  const std::string path =
      ::testing::TempDir() + "/flight_integration.json";
  std::remove(path.c_str());

  ExperimentConfig config;
  config.scheme = Scheme::kDecoSync;
  config.query.window = WindowSpec::CountTumbling(10'000);
  config.query.aggregate = AggregateKind::kSum;
  config.num_locals = 2;
  config.streams_per_local = 2;
  config.events_per_local = 100'000;
  config.base_rate = 1e6;
  config.rate_change = 0.01;
  config.batch_size = 2048;
  config.seed = 7;
  config.sim = true;
  config.ops.dump_flight_recorder = true;
  config.ops.flight_recorder_out = path;

  auto report = RunExperiment(config);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->windows_emitted, 0u);

  const std::string json = ReadFileOrDie(path);
  EXPECT_TRUE(BalancedJson(json)) << json.substr(0, 200);
  EXPECT_NE(json.find("\"reason\": \"requested\""), std::string::npos);
#if DECO_TRACE_ENABLED
  EXPECT_NE(json.find("\"hops\": ["), std::string::npos);
  EXPECT_NE(json.find("\"msg_id\":"), std::string::npos);
  EXPECT_NE(json.find("\"phase\":\"emit\""), std::string::npos);
#endif
  // The recorder must uninstall at end of run: a second run without it
  // must not touch the rings.
  EXPECT_EQ(FlightRecorder::Active(), nullptr);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace deco
