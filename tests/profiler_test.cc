#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "metrics/report.h"
#include "obs/profiler.h"

namespace deco {
namespace {

// Unit and integration tests of the in-run CPU/alloc profiler
// (src/obs/profiler.h): handler attribution sums to the thread's CPU
// total within tolerance, nothing is recorded when the profiler is off,
// and the harness surfaces the profile in RunReport.

/// Burns thread CPU until at least `nanos` of CLOCK_THREAD_CPUTIME_ID have
/// elapsed; returns an unusable value so the loop can't be optimized out.
volatile uint64_t g_burn_sink = 0;
void BurnCpu(TimeNanos nanos) {
  const TimeNanos until = ThreadCpuNanos() + nanos;
  uint64_t acc = g_burn_sink;
  while (ThreadCpuNanos() < until) {
    for (int i = 0; i < 1000; ++i) acc = acc * 1664525u + 1013904223u;
  }
  g_burn_sink = acc;
}

TEST(ProfilerTest, HandlerAttributionSumsToThreadCpu) {
  Profiler profiler(/*count_allocs=*/false);
  Profiler::ThreadSlot* slot = profiler.RegisterThread("worker");
  ASSERT_NE(slot, nullptr);

  // Two handler classes doing real work, a little unattributed work
  // outside any handler.
  constexpr TimeNanos kBurn = 3 * kNanosPerMilli;
  slot->HandlerBegin(MessageType::kEventBatch);
  BurnCpu(kBurn);
  slot->HandlerEnd();
  slot->HandlerBegin(MessageType::kPartialResult);
  BurnCpu(kBurn);
  slot->HandlerEnd();
  BurnCpu(kBurn / 4);  // outside a handler: counts to the thread only
  slot->Finish();

  const ProfileReport report = profiler.Collect();
  ASSERT_EQ(report.threads.size(), 1u);
  const ThreadProfile& t = report.threads[0];
  EXPECT_EQ(t.name, "worker");
  EXPECT_EQ(t.messages_handled, 2u);
  ASSERT_EQ(t.handlers.size(), 2u);
  EXPECT_EQ(t.handlers[0].type, MessageType::kEventBatch);
  EXPECT_EQ(t.handlers[1].type, MessageType::kPartialResult);

  uint64_t handler_cpu = 0;
  for (const HandlerProfile& h : t.handlers) {
    EXPECT_EQ(h.count, 1u);
    EXPECT_GE(h.cpu_nanos, static_cast<uint64_t>(kBurn));
    EXPECT_GE(h.wall_nanos, h.cpu_nanos / 2);  // wall >= cpu, roughly
    handler_cpu += h.cpu_nanos;
  }
  // The handler split never exceeds the thread total, and here (handlers
  // doing ~90% of the work) it must account for most of it.
  EXPECT_LE(handler_cpu, t.cpu_nanos);
  EXPECT_GE(static_cast<double>(handler_cpu),
            0.5 * static_cast<double>(t.cpu_nanos));
}

TEST(ProfilerTest, OpenHandlerIsClosedByFinish) {
  Profiler profiler(/*count_allocs=*/false);
  Profiler::ThreadSlot* slot = profiler.RegisterThread("worker");
  slot->HandlerBegin(MessageType::kStartWindow);
  BurnCpu(kNanosPerMilli);
  slot->Finish();  // no HandlerEnd: Finish must close the interval

  const ProfileReport report = profiler.Collect();
  ASSERT_EQ(report.threads.size(), 1u);
  ASSERT_EQ(report.threads[0].handlers.size(), 1u);
  EXPECT_EQ(report.threads[0].handlers[0].type, MessageType::kStartWindow);
  EXPECT_GE(report.threads[0].handlers[0].cpu_nanos,
            static_cast<uint64_t>(kNanosPerMilli) / 2);
}

TEST(ProfilerTest, HandlerEndWithoutBeginIsNoOp) {
  Profiler profiler(/*count_allocs=*/false);
  Profiler::ThreadSlot* slot = profiler.RegisterThread("worker");
  slot->HandlerEnd();  // receive re-entry with nothing dequeued yet
  slot->Finish();
  const ProfileReport report = profiler.Collect();
  ASSERT_EQ(report.threads.size(), 1u);
  EXPECT_EQ(report.threads[0].messages_handled, 0u);
  EXPECT_TRUE(report.threads[0].handlers.empty());
}

TEST(ProfilerTest, InstallExchangesAndUninstalls) {
  ASSERT_EQ(Profiler::Active(), nullptr);
  Profiler a, b;
  EXPECT_EQ(Profiler::Install(&a), nullptr);
  EXPECT_EQ(Profiler::Active(), &a);
  EXPECT_EQ(Profiler::Install(&b), &a);
  EXPECT_EQ(Profiler::Active(), &b);
  EXPECT_EQ(Profiler::Install(nullptr), &b);
  EXPECT_EQ(Profiler::Active(), nullptr);
}

TEST(ProfilerTest, AllocCountersTrackNewWhileEnabled) {
  if (!AllocCountingCompiledIn()) {
    GTEST_SKIP() << "built with DECO_PROFILE_ALLOC=OFF";
  }
  SetAllocCountingEnabled(true);
  const AllocCounters before = ThreadAllocCounters();
  {
    auto block = std::make_unique<std::vector<char>>(1 << 16);
    ASSERT_NE(block, nullptr);
  }
  const AllocCounters during = ThreadAllocCounters();
  SetAllocCountingEnabled(false);
  EXPECT_GT(during.count, before.count);
  EXPECT_GE(during.bytes, before.bytes + (1u << 16));

  // Gate closed: further allocations leave the counters untouched.
  const AllocCounters after_off = ThreadAllocCounters();
  auto more = std::make_unique<std::vector<char>>(1 << 12);
  ASSERT_NE(more, nullptr);
  const AllocCounters still = ThreadAllocCounters();
  EXPECT_EQ(still.count, after_off.count);
  EXPECT_EQ(still.bytes, after_off.bytes);
}

ExperimentConfig SmallConfig(Scheme scheme) {
  ExperimentConfig config;
  config.scheme = scheme;
  config.query.window = WindowSpec::CountTumbling(2000);
  config.query.aggregate = AggregateKind::kSum;
  config.num_locals = 2;
  config.streams_per_local = 2;
  config.events_per_local = 20'000;
  config.base_rate = 50'000;
  config.rate_change = 0.05;
  config.batch_size = 512;
  config.seed = 1234;
  return config;
}

TEST(ProfilerHarnessTest, DisabledRunRecordsNoSamples) {
  auto result = RunExperiment(SmallConfig(Scheme::kDecoAsync));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->profile.enabled);
  EXPECT_FALSE(result->profile.alloc_counted);
  EXPECT_TRUE(result->profile.threads.empty());
  EXPECT_EQ(result->profile.TotalCpuNanos(), 0u);
  // No profiler may leak past the run.
  EXPECT_EQ(Profiler::Active(), nullptr);
}

TEST(ProfilerHarnessTest, EnabledRunAttributesEveryActorThread) {
  ExperimentConfig config = SmallConfig(Scheme::kDecoAsync);
  config.profile.enabled = true;
  auto result = RunExperiment(config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(Profiler::Active(), nullptr);  // uninstalled after the run

  const ProfileReport& profile = result->profile;
  EXPECT_TRUE(profile.enabled);
  // One slot per actor: root + 2 locals.
  ASSERT_EQ(profile.threads.size(), 3u);
  bool saw_root = false;
  for (const ThreadProfile& t : profile.threads) {
    if (t.name == "root") saw_root = true;
    // Handler counts must sum to the thread's dispatch total, and the
    // handler CPU split can never exceed the thread's CPU total.
    uint64_t count = 0, cpu = 0;
    for (const HandlerProfile& h : t.handlers) {
      count += h.count;
      cpu += h.cpu_nanos;
    }
    EXPECT_EQ(count, t.messages_handled) << t.name;
    EXPECT_LE(cpu, t.cpu_nanos) << t.name;
  }
  EXPECT_TRUE(saw_root);
  // The root merges every partial: it must have dispatched messages and
  // burned measurable CPU.
  EXPECT_GT(profile.TotalCpuNanos(), 0u);
  if (AllocCountingCompiledIn()) {
    EXPECT_TRUE(profile.alloc_counted);
    EXPECT_GT(profile.TotalAllocations(), 0u);
  }
}

TEST(ProfilerHarnessTest, ProfileSurfacesInRunReportJson) {
  ExperimentConfig config = SmallConfig(Scheme::kCentral);
  config.profile.enabled = true;
  config.profile.count_allocs = false;
  auto result = RunExperiment(config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const std::string json = RunReportJson(*result);
  EXPECT_NE(json.find("\"profile\":{\"enabled\":true"), std::string::npos)
      << json.substr(0, 200);
  EXPECT_NE(json.find("\"cpu_nanos\""), std::string::npos);
}

}  // namespace
}  // namespace deco
