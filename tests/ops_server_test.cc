// Ops server tests: a real loopback HTTP client GETs /metrics, /healthz
// and /statusz from a running server and checks status lines, content
// types and body shape (Prometheus exposition lines, health JSON fields,
// per-node status entries). The render methods are also exercised
// directly so failures localize.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>

#include "common/clock.h"
#include "net/fabric.h"
#include "obs/metric_registry.h"
#include "obs/ops_server.h"
#include "obs/watchdog.h"

namespace deco {
namespace {

/// Minimal blocking HTTP/1.0 GET against 127.0.0.1:port; returns the raw
/// response (status line + headers + body), empty string on failure.
std::string HttpGet(int port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request =
      "GET " + path + " HTTP/1.0\r\nHost: 127.0.0.1\r\n\r\n";
  if (::send(fd, request.data(), request.size(), 0) < 0) {
    ::close(fd);
    return "";
  }
  std::string response;
  char buf[4096];
  ssize_t n = 0;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

class OpsServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fabric_ = std::make_unique<NetworkFabric>(&clock_);
    root_ = fabric_->RegisterNode("root");
    local_ = fabric_->RegisterNode("local-0");
    registry_.counter("root.windows_emitted")->Add(7);
    registry_.gauge("root.next_window")->Set(7);
    registry_.histogram("assemble.latency")->Record(1000);

    OpsServer::Options options;
    options.port = 0;  // ephemeral
    options.clock = &clock_;
    options.fabric = fabric_.get();
    options.registry = &registry_;
    options.watchdog = &watchdog_;
    options.statusz_extra = [] {
      return std::string("\"serving\": {\"enabled\": false}");
    };
    server_ = std::make_unique<OpsServer>(options);
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_GT(server_->port(), 0);
  }

  void TearDown() override { server_->Stop(); }

  SystemClock clock_;
  MetricRegistry registry_;
  Watchdog watchdog_{WatchdogOptions()};
  std::unique_ptr<NetworkFabric> fabric_;
  NodeId root_ = 0;
  NodeId local_ = 0;
  std::unique_ptr<OpsServer> server_;
};

TEST_F(OpsServerTest, MetricsEndpointServesPrometheusText) {
  const std::string response = HttpGet(server_->port(), "/metrics");
  ASSERT_FALSE(response.empty());
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("text/plain; version=0.0.4"), std::string::npos);
  // Counter with _total suffix, HELP/TYPE headers, gauge, histogram
  // summary and the per-node series.
  EXPECT_NE(response.find("# TYPE deco_root_windows_emitted_total counter"),
            std::string::npos);
  EXPECT_NE(response.find("deco_root_windows_emitted_total 7"),
            std::string::npos);
  EXPECT_NE(response.find("deco_root_next_window 7"), std::string::npos);
  EXPECT_NE(response.find("# TYPE deco_assemble_latency summary"),
            std::string::npos);
  EXPECT_NE(response.find("deco_assemble_latency_count 1"),
            std::string::npos);
  EXPECT_NE(response.find("deco_node_queue_depth{node=\"root\"}"),
            std::string::npos);
  EXPECT_NE(response.find("deco_node_queue_depth{node=\"local-0\"}"),
            std::string::npos);
}

TEST_F(OpsServerTest, HealthzReportsPassOnCleanFabric) {
  const std::string response = HttpGet(server_->port(), "/healthz");
  ASSERT_FALSE(response.empty());
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("application/health+json"), std::string::npos);
  EXPECT_NE(response.find("\"status\":\"pass\""), std::string::npos);
  EXPECT_NE(response.find("\"fabric:nodes\""), std::string::npos);
  EXPECT_NE(response.find("\"watchdog:alerts\""), std::string::npos);
  EXPECT_NE(response.find("\"alerts\":[]"), std::string::npos);
}

TEST_F(OpsServerTest, StatuszListsNodesAndExtraFragment) {
  const std::string response = HttpGet(server_->port(), "/statusz");
  ASSERT_FALSE(response.empty());
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("\"name\":\"root\""), std::string::npos);
  EXPECT_NE(response.find("\"name\":\"local-0\""), std::string::npos);
  EXPECT_NE(response.find("\"root.windows_emitted\":7"), std::string::npos);
  // The harness-injected fragment (serving/chaos state) rides along.
  EXPECT_NE(response.find("\"serving\": {\"enabled\": false}"),
            std::string::npos);
}

TEST_F(OpsServerTest, UnknownPathIs404AndPostIs405) {
  EXPECT_NE(HttpGet(server_->port(), "/nope").find("404"),
            std::string::npos);
  // Raw POST request.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(server_->port()));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::string request = "POST /metrics HTTP/1.0\r\n\r\n";
  ASSERT_GT(::send(fd, request.data(), request.size(), 0), 0);
  std::string response;
  char buf[1024];
  ssize_t n = 0;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  EXPECT_NE(response.find("405"), std::string::npos);
}

TEST_F(OpsServerTest, QueryStringIsIgnoredAndRequestsAreCounted) {
  const uint64_t before = server_->requests_served();
  const std::string response =
      HttpGet(server_->port(), "/metrics?debug=1");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_GT(server_->requests_served(), before);
}

TEST_F(OpsServerTest, ActiveAlertSurfacesInHealthzAndMetrics) {
  // Drive the watchdog into an active queue-growth alert by hand.
  WatchdogOptions options;
  options.queue_depth_limit = 10;
  options.trip_ticks = 1;
  Watchdog tripped(options, &registry_);
  TelemetrySample sample;
  sample.t_nanos = kNanosPerSecond;
  NodeSample node;
  node.name = "local-0";
  node.messages_sent = 1;
  sample.nodes.push_back(node);
  tripped.OnSample(sample);  // seed
  sample.t_nanos += kNanosPerSecond;
  sample.nodes[0].queue_depth = 500;
  sample.nodes[0].messages_sent = 2;
  tripped.OnSample(sample);
  ASSERT_EQ(tripped.active_count(), 1u);

  OpsServer::Options server_options;
  server_options.port = 0;
  server_options.clock = &clock_;
  server_options.fabric = fabric_.get();
  server_options.registry = &registry_;
  server_options.watchdog = &tripped;
  OpsServer alerting(server_options);
  ASSERT_TRUE(alerting.Start().ok());

  const std::string health = HttpGet(alerting.port(), "/healthz");
  EXPECT_NE(health.find("\"status\":\"warn\""), std::string::npos)
      << health;
  EXPECT_NE(health.find("queue-growth"), std::string::npos);

  const std::string metrics = HttpGet(alerting.port(), "/metrics");
  EXPECT_NE(metrics.find("deco_watchdog_alerts_active 1"),
            std::string::npos);
  alerting.Stop();
}

TEST_F(OpsServerTest, StopIsIdempotentAndPortCloses) {
  const int port = server_->port();
  server_->Stop();
  server_->Stop();
  EXPECT_TRUE(HttpGet(port, "/metrics").empty());
}

}  // namespace
}  // namespace deco
