#include <gtest/gtest.h>

#include "harness/experiment.h"

namespace deco {
namespace {

// Unit-level coverage of the experiment harness configuration (the
// end-to-end behaviour is covered by integration_test).

TEST(HarnessConfigTest, DefaultsValidate) {
  ExperimentConfig config;
  EXPECT_TRUE(config.Validate().ok());
}

TEST(HarnessConfigTest, IngestDerivation) {
  ExperimentConfig config;
  config.num_locals = 4;
  config.streams_per_local = 3;
  config.events_per_local = 123'456;
  config.base_rate = 90'000.0;
  config.rate_change = 0.07;
  config.batch_size = 777;
  config.cpu_events_per_sec = 55;

  const IngestConfig ingest = MakeIngestConfig(config, 2);
  EXPECT_EQ(ingest.events_to_produce, 123'456u);
  EXPECT_EQ(ingest.batch_size, 777u);
  EXPECT_EQ(ingest.cpu_events_per_sec, 55u);
  ASSERT_EQ(ingest.streams.size(), 3u);
  double total_rate = 0.0;
  for (const StreamConfig& stream : ingest.streams) {
    EXPECT_DOUBLE_EQ(stream.rate.change_fraction, 0.07);
    total_rate += stream.rate.base_rate;
  }
  EXPECT_NEAR(total_rate, 90'000.0, 1e-6);
}

TEST(HarnessConfigTest, StreamIdsAreGloballyUnique) {
  ExperimentConfig config;
  config.num_locals = 3;
  config.streams_per_local = 4;
  std::set<StreamId> ids;
  for (size_t ordinal = 0; ordinal < config.num_locals; ++ordinal) {
    for (const StreamConfig& stream :
         MakeIngestConfig(config, ordinal).streams) {
      EXPECT_TRUE(ids.insert(stream.stream_id).second)
          << "duplicate stream id " << stream.stream_id;
    }
  }
  EXPECT_EQ(ids.size(), 12u);
}

TEST(HarnessConfigTest, RateSkewSpreadsNodeRates) {
  ExperimentConfig config;
  config.base_rate = 100'000.0;
  config.rate_skew = 0.25;
  auto node_rate = [&](size_t ordinal) {
    double total = 0.0;
    for (const StreamConfig& s : MakeIngestConfig(config, ordinal).streams) {
      total += s.rate.base_rate;
    }
    return total;
  };
  EXPECT_NEAR(node_rate(0), 100'000.0, 1e-6);
  EXPECT_NEAR(node_rate(1), 125'000.0, 1e-6);
  EXPECT_NEAR(node_rate(3), 175'000.0, 1e-6);
}

TEST(HarnessConfigTest, SeedsDifferAcrossStreams) {
  ExperimentConfig config;
  config.num_locals = 2;
  config.streams_per_local = 2;
  std::set<uint64_t> seeds;
  for (size_t ordinal = 0; ordinal < 2; ++ordinal) {
    for (const StreamConfig& s : MakeIngestConfig(config, ordinal).streams) {
      EXPECT_TRUE(seeds.insert(s.seed).second);
    }
  }
}

TEST(HarnessConfigTest, ValidationRejections) {
  ExperimentConfig config;
  config.streams_per_local = 0;
  EXPECT_TRUE(RunExperiment(config).status().IsInvalidArgument());

  config = ExperimentConfig();
  config.events_per_local = 0;
  EXPECT_TRUE(RunExperiment(config).status().IsInvalidArgument());

  config = ExperimentConfig();
  config.batch_size = 0;
  EXPECT_TRUE(RunExperiment(config).status().IsInvalidArgument());

  config = ExperimentConfig();
  config.rate_change = -1.0;
  EXPECT_TRUE(RunExperiment(config).status().IsInvalidArgument());

  config = ExperimentConfig();
  config.query.window = WindowSpec::Session(100);
  EXPECT_TRUE(RunExperiment(config).status().IsNotSupported());
}

TEST(HarnessConfigTest, ProtocolWindowLengthForSliding) {
  EXPECT_EQ(ProtocolWindowLength(WindowSpec::CountTumbling(1000)), 1000u);
  EXPECT_EQ(ProtocolWindowLength(WindowSpec::CountSliding(1000, 250)),
            250u);
  EXPECT_EQ(ProtocolWindowLength(WindowSpec::CountSliding(900, 600)), 300u);
}

TEST(HarnessConfigTest, ProtocolWindowLengthCoprimeSlide) {
  // Coprime length/slide: the only common pane is a single event. Legal
  // but degenerate — every event is its own protocol window.
  EXPECT_EQ(ProtocolWindowLength(WindowSpec::CountSliding(1000, 333)), 1u);
  EXPECT_EQ(ProtocolWindowLength(WindowSpec::CountSliding(7, 5)), 1u);
}

TEST(HarnessConfigTest, ProtocolWindowLengthSlideEqualsLength) {
  // slide == length is semantically tumbling; the pane decomposition must
  // agree with the tumbling spec of the same length.
  EXPECT_EQ(ProtocolWindowLength(WindowSpec::CountSliding(500, 500)), 500u);
  EXPECT_EQ(ProtocolWindowLength(WindowSpec::CountSliding(500, 500)),
            ProtocolWindowLength(WindowSpec::CountTumbling(500)));
}

TEST(HarnessConfigTest, ProtocolWindowLengthSlideLargerThanLength) {
  // slide > length (sampling windows with gaps): gcd still divides both,
  // so pane boundaries align with every window start *and* end. Built via
  // direct field assignment — WindowSpec::CountSliding's factory contract
  // is slide <= length, but the protocol math must stay total.
  WindowSpec spec = WindowSpec::CountTumbling(400);
  spec.type = WindowType::kSliding;
  spec.slide = 1000;
  EXPECT_EQ(ProtocolWindowLength(spec), 200u);
  spec.slide = 400 * 3;
  EXPECT_EQ(ProtocolWindowLength(spec), 400u);
}

TEST(HarnessConfigTest, MultiQueryPaneIsGcdOfProtocolLengths) {
  // The registry's shared pane composes per-query protocol lengths by gcd:
  // tumbling 600 (pane 600), sliding 400/300 (pane 100) -> shared 100;
  // adding tumbling 450 (pane 450) drops the gcd to 50.
  QueryRegistry registry;
  ServedQuery a;
  a.query.window = WindowSpec::CountTumbling(600);
  ASSERT_TRUE(registry.Add(a).ok());
  EXPECT_EQ(registry.PaneLength(), 600u);

  ServedQuery b;
  b.query.window = WindowSpec::CountSliding(400, 300);
  ASSERT_TRUE(registry.Add(b).ok());
  EXPECT_EQ(registry.PaneLength(), 100u);

  ServedQuery c;
  c.query.window = WindowSpec::CountTumbling(450);
  ASSERT_TRUE(registry.Add(c).ok());
  EXPECT_EQ(registry.PaneLength(), 50u);
}

TEST(HarnessConfigTest, DecentralizedClassification) {
  EXPECT_FALSE(IsDecentralized(Scheme::kCentral));
  EXPECT_FALSE(IsDecentralized(Scheme::kScotty));
  EXPECT_FALSE(IsDecentralized(Scheme::kDisco));
  EXPECT_TRUE(IsDecentralized(Scheme::kApprox));
  EXPECT_TRUE(IsDecentralized(Scheme::kDecoAsync));
}

}  // namespace
}  // namespace deco
