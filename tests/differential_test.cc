#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/random.h"
#include "harness/experiment.h"
#include "harness/oracle.h"

namespace deco {
namespace {

// Property-based differential test (ISSUE 4 tentpole): sample random
// experiment configurations, run every scheme under the deterministic
// simulation runtime, and compare each run against the single-threaded
// reference oracle.
//
// Exactness contract (mirrors tests/integration_test.cc, applied across
// the whole sampled configuration space instead of one fixed config):
//  - central / scotty / disco / deco-mon / deco-sync / deco-monlocal
//    reproduce the oracle's windows exactly: same window count, same
//    per-window event counts and end timestamps, values equal up to
//    floating-point association, and (for tumbling windows) a consumption
//    overlap of exactly 1.0;
//  - deco-async must stay within tight error bounds: full windows of the
//    configured length, >= 99% consumption overlap, every value
//    self-consistent with its own consumption log;
//  - approx has no exactness guarantee; it must finish, emit roughly the
//    right number of windows, and keep its values self-consistent.
//
// Environment knobs (used by the CI `sim-differential` job):
//  - DECO_DIFF_SEED: master seed for the configuration sampler
//  - DECO_DIFF_CONFIGS: number of sampled configurations (default 100)
//
// Every assertion failure prints a copy-pastable `deco_run --sim` command
// line reproducing the failing (config, scheme) pair.

uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoull(value, nullptr, 10);
}

// The full sampled space, kept small enough that one (config, scheme) sim
// run takes milliseconds.
struct SampledConfig {
  ExperimentConfig config;
  std::string repro_base;  // deco_run flags minus --scheme
};

const char* AggFlag(AggregateKind kind) {
  switch (kind) {
    case AggregateKind::kSum:
      return "sum";
    case AggregateKind::kCount:
      return "count";
    case AggregateKind::kMin:
      return "min";
    case AggregateKind::kMax:
      return "max";
    case AggregateKind::kAvg:
      return "avg";
    default:
      return "sum";
  }
}

SampledConfig SampleConfig(Rng* rng) {
  ExperimentConfig config;
  config.sim = true;
  config.num_locals = static_cast<size_t>(rng->NextInt(1, 4));
  config.streams_per_local = static_cast<size_t>(rng->NextInt(1, 3));

  uint64_t window;
  uint64_t slide = 0;
  if (rng->NextBool(0.25)) {  // quarter of the space: sliding windows
    // Slide divides window, as in real pane-based deployments: the panes
    // the schemes decompose into are `slide` events wide. A non-dividing
    // slide makes the pane width gcd(window, slide) — possibly a handful
    // of events — and the per-pane protocol cost explodes.
    slide = static_cast<uint64_t>(rng->NextInt(100, 500));
    window = slide * static_cast<uint64_t>(rng->NextInt(2, 4));
    config.query.window = WindowSpec::CountSliding(window, slide);
  } else {
    window = static_cast<uint64_t>(rng->NextInt(200, 2000));
    config.query.window = WindowSpec::CountTumbling(window);
  }

  static const AggregateKind kAggs[] = {
      AggregateKind::kSum, AggregateKind::kSum, AggregateKind::kSum,
      AggregateKind::kCount, AggregateKind::kMin, AggregateKind::kMax,
      AggregateKind::kAvg};
  config.query.aggregate = kAggs[rng->NextBounded(7)];

  // Enough events for 4..10 full global windows, split across the locals.
  const uint64_t windows = static_cast<uint64_t>(rng->NextInt(4, 10));
  config.events_per_local = std::max<uint64_t>(
      256, window * windows / config.num_locals + window / 2);
  config.base_rate = 20'000.0 * static_cast<double>(rng->NextInt(1, 10));
  config.rate_change = 0.05 * static_cast<double>(rng->NextInt(0, 6));
  config.rate_skew = 0.1 * static_cast<double>(rng->NextInt(0, 3));
  static const size_t kBatches[] = {64, 128, 256, 512};
  config.batch_size = kBatches[rng->NextBounded(4)];
  config.seed = rng->NextUint64() >> 1;
  // Unpaced sim runs finish in milliseconds of virtual time; a run still
  // going after a virtual minute is livelocked, not slow.
  config.sim_time_limit_nanos = 60 * kNanosPerSecond;

  SampledConfig sampled;
  sampled.config = config;
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "deco_run --sim --seed=%llu --window=%llu%s%s --agg=%s --locals=%zu "
      "--streams=%zu --events=%llu --rate=%.0f --change=%.2f --skew=%.1f "
      "--batch=%zu",
      static_cast<unsigned long long>(config.seed),
      static_cast<unsigned long long>(window), slide > 0 ? " --slide=" : "",
      slide > 0 ? std::to_string(slide).c_str() : "",
      AggFlag(config.query.aggregate), config.num_locals,
      config.streams_per_local,
      static_cast<unsigned long long>(config.events_per_local),
      config.base_rate, config.rate_change, config.rate_skew,
      config.batch_size);
  sampled.repro_base = buf;
  return sampled;
}

double RelTolerance(double truth) {
  return 1e-6 * std::max(1.0, std::fabs(truth));
}

// One (config, scheme) differential run. Returns false on failure so the
// caller can count failures; gtest records the details.
void CheckScheme(const SampledConfig& sampled, Scheme scheme,
                 const OracleReference& oracle) {
  ExperimentConfig config = sampled.config;
  config.scheme = scheme;
  const std::string repro =
      sampled.repro_base + " --scheme=" + SchemeToString(scheme);
  SCOPED_TRACE("repro: " + repro);

  const bool tumbling =
      config.query.window.type == WindowType::kTumbling;
  if (scheme == Scheme::kApprox && !tumbling) {
    // Approx only estimates tumbling boundaries; the harness must reject
    // the combination loudly instead of degrading it to tumbling.
    EXPECT_TRUE(RunExperiment(config).status().IsNotSupported());
    return;
  }

  auto result = RunExperiment(config);
  ASSERT_TRUE(result.ok()) << result.status().ToString() << "\nrepro: "
                           << repro;
  const RunReport& report = *result;

  if (scheme == Scheme::kApprox) {
    // No exactness contract: the run must finish and emit roughly the
    // oracle's window count. Under strong rate drift approx estimates fat
    // windows and can run ~30% short, so the lower bound is proportional.
    EXPECT_GE(2 * report.windows.size() + 2, oracle.windows.size());
    EXPECT_LE(report.windows.size(), oracle.windows.size() + 2);
    if (tumbling && oracle.consumption.num_windows() > 0) {
      const CorrectnessReport correctness =
          CompareConsumption(oracle.consumption, report.consumption);
      EXPECT_GT(correctness.correctness, 0.2);
    }
    return;
  }

  if (scheme == Scheme::kDecoAsync) {
    // Error-bound contract: full windows, >= 99% of events in the right
    // window, and every reported value the true aggregate of the events
    // the run consumed for it. Async subwindows close asynchronously, so
    // the final (sliding) window racing end-of-stream may be dropped.
    ASSERT_LE(report.windows.size(), oracle.windows.size());
    ASSERT_GE(report.windows.size() + 1, oracle.windows.size());
    for (size_t i = 0; i < report.windows.size(); ++i) {
      EXPECT_EQ(report.windows[i].event_count,
                oracle.windows[i].event_count)
          << "window " << i;
      EXPECT_NEAR(report.windows[i].value, oracle.windows[i].value,
                  100.0 * RelTolerance(oracle.windows[i].value))
          << "window " << i << " beyond the 1e-4 async error bound";
    }
    if (tumbling) {
      const CorrectnessReport correctness =
          CompareConsumption(oracle.consumption, report.consumption);
      EXPECT_GE(correctness.correctness, 0.99);
      auto recomputed =
          RecomputeWindowValues(config, report.consumption);
      ASSERT_TRUE(recomputed.ok()) << recomputed.status().ToString();
      ASSERT_EQ(recomputed->size(), report.windows.size());
      for (size_t i = 0; i < report.windows.size(); ++i) {
        EXPECT_NEAR(report.windows[i].value, (*recomputed)[i],
                    RelTolerance((*recomputed)[i]))
            << "window " << i << " value is not the aggregate of the "
            << "events the run consumed for it";
      }
    }
    return;
  }

  // Exact schemes: the oracle's windows, verbatim.
  ASSERT_EQ(report.windows.size(), oracle.windows.size());
  for (size_t i = 0; i < report.windows.size(); ++i) {
    EXPECT_EQ(report.windows[i].event_count, oracle.windows[i].event_count)
        << "window " << i;
    EXPECT_EQ(report.windows[i].end_ts, oracle.windows[i].end_ts)
        << "window " << i;
    EXPECT_NEAR(report.windows[i].value, oracle.windows[i].value,
                RelTolerance(oracle.windows[i].value))
        << "window " << i;
  }
  if (tumbling) {
    const CorrectnessReport correctness =
        CompareConsumption(oracle.consumption, report.consumption);
    EXPECT_DOUBLE_EQ(correctness.correctness, 1.0);
  }
}

TEST(DifferentialTest, AllSchemesMatchOracleOverSampledConfigs) {
  const uint64_t master_seed = EnvU64("DECO_DIFF_SEED", 42);
  const uint64_t num_configs = EnvU64("DECO_DIFF_CONFIGS", 100);
  std::printf("differential: master seed %llu, %llu configs "
              "(set DECO_DIFF_SEED / DECO_DIFF_CONFIGS to override)\n",
              static_cast<unsigned long long>(master_seed),
              static_cast<unsigned long long>(num_configs));

  static const Scheme kSchemes[] = {
      Scheme::kCentral,  Scheme::kScotty,    Scheme::kDisco,
      Scheme::kApprox,   Scheme::kDecoMon,   Scheme::kDecoSync,
      Scheme::kDecoAsync, Scheme::kDecoMonLocal};

  Rng rng(master_seed);
  for (uint64_t c = 0; c < num_configs; ++c) {
    const SampledConfig sampled = SampleConfig(&rng);
    SCOPED_TRACE("config " + std::to_string(c) + ": " + sampled.repro_base);
    auto oracle = ComputeOracleReference(sampled.config);
    ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
    ASSERT_GE(oracle->windows.size(), 2u)
        << "sampler produced a degenerate config";
    for (Scheme scheme : kSchemes) {
      CheckScheme(sampled, scheme, *oracle);
      if (::testing::Test::HasFatalFailure()) return;
    }
    if ((c + 1) % 20 == 0) {
      std::printf("differential: %llu/%llu configs checked\n",
                  static_cast<unsigned long long>(c + 1),
                  static_cast<unsigned long long>(num_configs));
    }
  }
}

// Multi-query serving differential (ISSUE 7): a quarter-sized sweep of
// sampled configurations gains 1..3 co-queries sharing the primary's
// stream, and every query's composed windows must match the per-query
// pane oracle — natively served (shared slice store) for the exact Deco
// schemes, loop-per-query fallback for Central. Co-query windows are
// multiples of the primary's protocol pane so the shared pane (the gcd)
// never collapses below it.
TEST(DifferentialTest, MultiQueryServingMatchesPerQueryOracle) {
  const uint64_t master_seed = EnvU64("DECO_DIFF_SEED", 42) ^ 0x5e7fe;
  const uint64_t num_configs = EnvU64("DECO_DIFF_MULTIQ", 20);

  static const Scheme kServeSchemes[] = {Scheme::kDecoMon,
                                         Scheme::kDecoSync,
                                         Scheme::kCentral};
  static const AggregateKind kCoAggs[] = {
      AggregateKind::kSum, AggregateKind::kCount, AggregateKind::kMin,
      AggregateKind::kMax, AggregateKind::kAvg};

  Rng rng(master_seed);
  for (uint64_t c = 0; c < num_configs; ++c) {
    SampledConfig sampled = SampleConfig(&rng);
    ExperimentConfig& config = sampled.config;

    ServedQuery primary;
    primary.query = config.query;
    config.serve.queries.push_back(primary);

    const uint64_t pane = ProtocolWindowLength(config.query.window);
    const int co_queries = rng.NextInt(1, 3);
    for (int i = 0; i < co_queries; ++i) {
      ServedQuery co;
      co.query.aggregate = kCoAggs[rng.NextBounded(5)];
      const uint64_t length =
          pane * static_cast<uint64_t>(rng.NextInt(1, 4));
      if (rng.NextBool(0.3) && length > pane) {
        co.query.window = WindowSpec::CountSliding(length, pane);
      } else {
        co.query.window = WindowSpec::CountTumbling(length);
      }
      co.tenant = i % 2 == 0 ? "even" : "odd";
      config.serve.queries.push_back(co);
    }
    std::string queries_flag = " --queries=";
    for (size_t qi = 0; qi < config.serve.queries.size(); ++qi) {
      if (qi > 0) queries_flag += ";";
      queries_flag += CanonicalQuerySpec(config.serve.queries[qi]);
    }
    SCOPED_TRACE("config " + std::to_string(c) + ": " +
                 sampled.repro_base + queries_flag);

    for (Scheme scheme : kServeSchemes) {
      SCOPED_TRACE(std::string("scheme ") + SchemeToString(scheme));
      config.scheme = scheme;
      auto result = RunExperiment(config);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      const RunReport& report = *result;
      ASSERT_EQ(report.query_results.size(), config.serve.queries.size());
      ASSERT_TRUE(report.serving.enabled);
      for (size_t qi = 0; qi < report.query_results.size(); ++qi) {
        const QueryRunResult& qr = report.query_results[qi];
        SCOPED_TRACE("query " + std::to_string(qr.query_id) + " [" +
                     qr.spec + "]");
        auto oracle = ComputeQueryOracle(
            config, config.serve.queries[qi].query,
            report.serving.pane_length, qr.start_pane, qr.end_pane);
        ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
        ASSERT_EQ(qr.windows.size(), oracle->size());
        for (size_t i = 0; i < qr.windows.size(); ++i) {
          EXPECT_EQ(qr.windows[i].event_count, (*oracle)[i].event_count)
              << "window " << i;
          EXPECT_EQ(qr.windows[i].end_ts, (*oracle)[i].end_ts)
              << "window " << i;
          EXPECT_NEAR(qr.windows[i].value, (*oracle)[i].value,
                      RelTolerance((*oracle)[i].value))
              << "window " << i;
        }
        if (::testing::Test::HasFatalFailure()) return;
      }
    }
    // Reset for the next sample (SampleConfig returns a fresh config, but
    // the loop mutated this one's scheme/serve fields in place).
  }
}

// The oracle must agree with an actual Central run byte-for-byte on counts
// and timestamps — the anchor that ties the synthetic reference to the
// real pipeline.
TEST(DifferentialTest, OracleMatchesCentralRun) {
  Rng rng(7);
  const SampledConfig sampled = SampleConfig(&rng);
  auto oracle = ComputeOracleReference(sampled.config);
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
  ExperimentConfig config = sampled.config;
  config.scheme = Scheme::kCentral;
  auto run = RunExperiment(config);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ASSERT_EQ(run->windows.size(), oracle->windows.size());
  for (size_t i = 0; i < run->windows.size(); ++i) {
    EXPECT_EQ(run->windows[i].event_count, oracle->windows[i].event_count);
    EXPECT_EQ(run->windows[i].end_ts, oracle->windows[i].end_ts);
    EXPECT_NEAR(run->windows[i].value, oracle->windows[i].value,
                RelTolerance(oracle->windows[i].value));
  }
  EXPECT_EQ(run->events_processed, oracle->events_processed);
}

}  // namespace
}  // namespace deco
