#include <gtest/gtest.h>

#include <chrono>

#include "deco/local_node.h"
#include "node/runtime.h"

namespace deco {
namespace {

// Drives one real DecoLocalNode over the fabric from a scripted "root":
// the test body plays the root role, sending assignments and correction
// requests and asserting on the exact messages the local node emits.
class LocalNodeProtocolTest : public ::testing::Test {
 protected:
  static constexpr double kRate = 100'000.0;

  void Start(DecoScheme scheme, uint64_t events = 50'000,
             DecoLocalOptions options = {}) {
    fabric_ = std::make_unique<NetworkFabric>(SystemClock::Default(), 3);
    topology_.root = fabric_->RegisterNode("root");
    topology_.locals = {fabric_->RegisterNode("local")};

    IngestConfig ingest;
    StreamConfig stream;
    stream.stream_id = 0;
    stream.rate.base_rate = kRate;
    stream.rate.change_fraction = 0.0;
    stream.seed = 5;
    ingest.streams.push_back(stream);
    ingest.events_to_produce = events;
    ingest.batch_size = 512;

    QueryConfig query;
    query.window = WindowSpec::CountTumbling(10'000);

    local_ = std::make_unique<DecoLocalNode>(
        fabric_.get(), topology_.locals[0], SystemClock::Default(),
        topology_, ingest, query, scheme, options);
    local_->Start();
  }

  void TearDown() override {
    if (local_ != nullptr) {
      local_->RequestStop();
      fabric_->Shutdown();
      local_->Join();
    }
  }

  std::optional<Message> ReceiveAtRoot() {
    return fabric_->mailbox(topology_.root)
        ->PopWithTimeout(std::chrono::seconds(5));
  }

  // Receives until a message of `type` arrives; fails the test after a
  // bounded number of other messages.
  std::optional<Message> ReceiveOfType(MessageType type) {
    for (int i = 0; i < 64; ++i) {
      auto msg = ReceiveAtRoot();
      if (!msg.has_value()) return std::nullopt;
      if (msg->type == type) return msg;
    }
    return std::nullopt;
  }

  void SendAssignment(uint64_t w, uint64_t size, uint64_t delta,
                      uint64_t epoch = 0, EventKey wm = EventKey{}) {
    WindowAssignment assignment;
    assignment.window_index = w;
    assignment.local_window_size = size;
    assignment.delta = delta;
    assignment.wm_ts = wm.ts;
    assignment.wm_stream = wm.stream;
    assignment.wm_id = wm.id;
    BinaryWriter writer;
    EncodeWindowAssignment(assignment, &writer);
    Message msg;
    msg.type = MessageType::kWindowAssignment;
    msg.src = topology_.root;
    msg.dst = topology_.locals[0];
    msg.window_index = w;
    msg.epoch = epoch;
    msg.payload = writer.Release();
    ASSERT_TRUE(fabric_->Send(std::move(msg)).ok());
  }

  void SendCorrectionRequest(uint64_t w, uint64_t topup, uint64_t epoch) {
    CorrectionRequest request;
    request.window_index = w;
    request.topup_events = topup;
    BinaryWriter writer;
    EncodeCorrectionRequest(request, &writer);
    Message msg;
    msg.type = MessageType::kCorrectionRequest;
    msg.src = topology_.root;
    msg.dst = topology_.locals[0];
    msg.window_index = w;
    msg.epoch = epoch;
    msg.payload = writer.Release();
    ASSERT_TRUE(fabric_->Send(std::move(msg)).ok());
  }

  std::unique_ptr<NetworkFabric> fabric_;
  Topology topology_;
  std::unique_ptr<DecoLocalNode> local_;
};

TEST_F(LocalNodeProtocolTest, ReportsRateOnStartup) {
  Start(DecoScheme::kSync);
  auto msg = ReceiveOfType(MessageType::kEventRate);
  ASSERT_TRUE(msg.has_value());
  BinaryReader reader(msg->payload);
  const RateReport report = DecodeRateReport(&reader).value();
  EXPECT_EQ(report.window_index, 0u);
  EXPECT_NEAR(report.event_rate, kRate, 1.0);
  EXPECT_EQ(report.stream_position, 0u);
}

TEST_F(LocalNodeProtocolTest, SyncWindowShipsSliceAndEndBuffer) {
  Start(DecoScheme::kSync);
  ASSERT_TRUE(ReceiveOfType(MessageType::kEventRate).has_value());
  SendAssignment(0, 5000, 100);

  // Sync layout: slice = 5000-100 = 4900, end buffer = 200.
  auto slice = ReceiveOfType(MessageType::kPartialResult);
  ASSERT_TRUE(slice.has_value());
  EXPECT_EQ(slice->window_index, 0u);
  BinaryReader reader(slice->payload);
  const SliceSummary summary = DecodeSliceSummary(&reader).value();
  EXPECT_EQ(summary.event_count, 4900u);
  EXPECT_GT(summary.max_ts, summary.min_ts);
  EXPECT_NEAR(summary.event_rate, kRate, 1.0);
  EXPECT_EQ(slice->lat_event_count, 4900u);

  auto end = ReceiveOfType(MessageType::kEventBatch);
  ASSERT_TRUE(end.has_value());
  BinaryReader end_reader(end->payload);
  const EventBatchPayload batch = DecodeEventBatch(&end_reader).value();
  EXPECT_EQ(batch.role, BatchRole::kEnd);
  EXPECT_EQ(batch.events.size(), 200u);
  // The end buffer continues exactly where the slice stopped.
  EXPECT_GT(batch.events.front().timestamp, summary.max_ts);
}

TEST_F(LocalNodeProtocolTest, SyncBlocksUntilNextAssignment) {
  Start(DecoScheme::kSync);
  ASSERT_TRUE(ReceiveOfType(MessageType::kEventRate).has_value());
  SendAssignment(0, 5000, 100);
  ASSERT_TRUE(ReceiveOfType(MessageType::kPartialResult).has_value());
  ASSERT_TRUE(ReceiveOfType(MessageType::kEventBatch).has_value());
  // No assignment for window 1: the synchronous local node must wait.
  // While blocked it sends nothing but liveness heartbeats (kEventRate,
  // every heartbeat_nanos) — never data for an unassigned window.
  for (int i = 0; i < 3; ++i) {
    auto extra = fabric_->mailbox(topology_.root)
                     ->PopWithTimeout(std::chrono::milliseconds(100));
    if (!extra.has_value()) continue;
    EXPECT_EQ(extra->type, MessageType::kEventRate)
        << "blocked node sent " << MessageTypeToString(extra->type);
  }
  // Assignment arrives: window 1 flows.
  SendAssignment(1, 5000, 100);
  EXPECT_TRUE(ReceiveOfType(MessageType::kPartialResult).has_value());
}

TEST_F(LocalNodeProtocolTest, AsyncPipelinesWithoutWaiting) {
  DecoLocalOptions options;
  options.max_unverified_windows = 3;
  Start(DecoScheme::kAsync, 50'000, options);
  ASSERT_TRUE(ReceiveOfType(MessageType::kEventRate).has_value());
  SendAssignment(0, 5000, 100);
  // Without any further assignment the async node produces windows
  // 0..max_unverified ahead; each window ships slice + end (plus fronts
  // for steady-state windows). The first heartbeat (kEventRate after the
  // startup report) is the positive signal that the node hit the
  // pipeline cap and blocked.
  int slices = 0;
  while (true) {
    auto msg = fabric_->mailbox(topology_.root)
                   ->PopWithTimeout(std::chrono::milliseconds(300));
    if (!msg.has_value()) break;
    if (msg->type == MessageType::kEventRate) break;  // blocked: heartbeat
    if (msg->type == MessageType::kPartialResult) ++slices;
  }
  EXPECT_GE(slices, 3);
  EXPECT_LE(slices, 5);  // bounded by the pipeline cap
}

TEST_F(LocalNodeProtocolTest, AsyncFirstWindowIsSlackLayout) {
  Start(DecoScheme::kAsync);
  ASSERT_TRUE(ReceiveOfType(MessageType::kEventRate).has_value());
  SendAssignment(0, 5000, 100);
  // Slack layout has no front buffer; its first data message is the slice.
  auto first = ReceiveOfType(MessageType::kPartialResult);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->window_index, 0u);
  // Window 1 (steady async layout) starts with a front buffer.
  std::optional<Message> front;
  for (int i = 0; i < 32; ++i) {
    auto msg = ReceiveAtRoot();
    ASSERT_TRUE(msg.has_value());
    if (msg->type == MessageType::kEventBatch && msg->window_index == 1) {
      front = msg;
      break;
    }
  }
  ASSERT_TRUE(front.has_value());
  BinaryReader reader(front->payload);
  EXPECT_EQ(DecodeEventBatch(&reader).value().role, BatchRole::kFront);
}

TEST_F(LocalNodeProtocolTest, CorrectionResendsFullRetainedRegion) {
  Start(DecoScheme::kSync);
  ASSERT_TRUE(ReceiveOfType(MessageType::kEventRate).has_value());
  SendAssignment(0, 5000, 100);
  ASSERT_TRUE(ReceiveOfType(MessageType::kPartialResult).has_value());
  ASSERT_TRUE(ReceiveOfType(MessageType::kEventBatch).has_value());

  SendCorrectionRequest(0, 0, /*epoch=*/1);
  auto response_msg = ReceiveOfType(MessageType::kCorrectionResult);
  ASSERT_TRUE(response_msg.has_value());
  EXPECT_EQ(response_msg->epoch, 1u);  // echoes the request epoch
  BinaryReader reader(response_msg->payload);
  const CorrectionResponse response =
      DecodeCorrectionResponse(&reader).value();
  // Retained = the produced region (5100 events) rounded up to whole
  // ingest batches (512): events are pulled batch-wise into retention.
  EXPECT_EQ(response.events.size(), 5120u);
  EXPECT_EQ(response.from_offset, 0u);
  EXPECT_FALSE(response.end_of_stream);
}

TEST_F(LocalNodeProtocolTest, CorrectionTopUpPullsFreshEvents) {
  Start(DecoScheme::kSync);
  ASSERT_TRUE(ReceiveOfType(MessageType::kEventRate).has_value());
  SendAssignment(0, 5000, 100);
  ASSERT_TRUE(ReceiveOfType(MessageType::kPartialResult).has_value());
  ASSERT_TRUE(ReceiveOfType(MessageType::kEventBatch).has_value());

  SendCorrectionRequest(0, 0, 1);
  ASSERT_TRUE(ReceiveOfType(MessageType::kCorrectionResult).has_value());
  SendCorrectionRequest(0, 300, 1);
  auto topup_msg = ReceiveOfType(MessageType::kCorrectionResult);
  ASSERT_TRUE(topup_msg.has_value());
  BinaryReader reader(topup_msg->payload);
  const CorrectionResponse topup =
      DecodeCorrectionResponse(&reader).value();
  // Top-ups are served in whole ingest batches (>= the requested count).
  EXPECT_GE(topup.events.size(), 300u);
  EXPECT_EQ(topup.from_offset, 5120u);
}

TEST_F(LocalNodeProtocolTest, RollbackReplansFromWatermark) {
  Start(DecoScheme::kSync);
  ASSERT_TRUE(ReceiveOfType(MessageType::kEventRate).has_value());
  SendAssignment(0, 5000, 100);
  ASSERT_TRUE(ReceiveOfType(MessageType::kPartialResult).has_value());
  auto end = ReceiveOfType(MessageType::kEventBatch);
  ASSERT_TRUE(end.has_value());
  BinaryReader end_reader(end->payload);
  const EventBatchPayload end_batch = DecodeEventBatch(&end_reader).value();

  // Pretend the correction consumed exactly 5000 events; the watermark is
  // the key of the 5000th event (the 100th event of the end buffer).
  const Event& cut = end_batch.events[99];
  SendCorrectionRequest(0, 0, 1);
  ASSERT_TRUE(ReceiveOfType(MessageType::kCorrectionResult).has_value());
  SendAssignment(1, 5000, 100, /*epoch=*/1,
                 EventKey{cut.timestamp, cut.stream_id, cut.id});

  // The re-planned window 1 must start right after the watermark: its
  // slice begins with the 101st end-buffer event.
  auto slice = ReceiveOfType(MessageType::kPartialResult);
  ASSERT_TRUE(slice.has_value());
  EXPECT_EQ(slice->window_index, 1u);
  BinaryReader reader(slice->payload);
  const SliceSummary summary = DecodeSliceSummary(&reader).value();
  EXPECT_EQ(summary.min_ts, end_batch.events[100].timestamp);
}

TEST_F(LocalNodeProtocolTest, EndOfStreamAnnounced) {
  Start(DecoScheme::kSync, /*events=*/6000);
  ASSERT_TRUE(ReceiveOfType(MessageType::kEventRate).has_value());
  SendAssignment(0, 5000, 100);  // region 5100 < 6000
  ASSERT_TRUE(ReceiveOfType(MessageType::kPartialResult).has_value());
  SendAssignment(1, 5000, 100);  // second window exhausts the budget
  auto slice = ReceiveOfType(MessageType::kPartialResult);
  ASSERT_TRUE(slice.has_value());
  BinaryReader reader(slice->payload);
  // Only 900 events remain for the 4900-event slice.
  EXPECT_EQ(DecodeSliceSummary(&reader).value().event_count, 900u);
  EXPECT_TRUE(ReceiveOfType(MessageType::kShutdown).has_value());
}

TEST_F(LocalNodeProtocolTest, MonSendsRateReportPerWindow) {
  Start(DecoScheme::kMon);
  ASSERT_TRUE(ReceiveOfType(MessageType::kEventRate).has_value());
  SendAssignment(0, 5000, 100);
  ASSERT_TRUE(ReceiveOfType(MessageType::kPartialResult).has_value());
  // After producing window 0, mon reports the rate for window 1 without
  // needing any prompt (the initialization up-flow of the next window).
  auto report_msg = ReceiveOfType(MessageType::kEventRate);
  ASSERT_TRUE(report_msg.has_value());
  BinaryReader reader(report_msg->payload);
  EXPECT_EQ(DecodeRateReport(&reader).value().window_index, 1u);
}

// Regression: the watermark of a normal (non-rollback) assignment must
// never drop retained events that were not yet produced into regions —
// they would be lost for future correction resends. Conversely a
// rollback assignment (higher epoch) trims everything at or below the
// watermark, because the corrected window consumed it from the complete
// candidate streams; leaving it would re-produce duplicates.
TEST_F(LocalNodeProtocolTest, RollbackTrimsConsumedEventsExactly) {
  Start(DecoScheme::kSync);
  ASSERT_TRUE(ReceiveOfType(MessageType::kEventRate).has_value());
  SendAssignment(0, 5000, 100);
  ASSERT_TRUE(ReceiveOfType(MessageType::kPartialResult).has_value());
  auto end = ReceiveOfType(MessageType::kEventBatch);
  ASSERT_TRUE(end.has_value());
  BinaryReader end_reader(end->payload);
  const EventBatchPayload end_batch = DecodeEventBatch(&end_reader).value();

  // Correct window 0 consuming 4950 events; rollback assignment carries
  // the cut key and the bumped epoch.
  SendCorrectionRequest(0, 0, 1);
  ASSERT_TRUE(ReceiveOfType(MessageType::kCorrectionResult).has_value());
  const Event& cut = end_batch.events[49];  // slice 4900 + 50
  SendAssignment(1, 5000, 100, /*epoch=*/1,
                 EventKey{cut.timestamp, cut.stream_id, cut.id});

  // Window 1's slice must start at exactly the first unconsumed event; a
  // double-consumed (or lost) event would shift its first timestamp.
  auto slice = ReceiveOfType(MessageType::kPartialResult);
  ASSERT_TRUE(slice.has_value());
  BinaryReader reader(slice->payload);
  const SliceSummary summary = DecodeSliceSummary(&reader).value();
  EXPECT_EQ(summary.min_ts, end_batch.events[50].timestamp);

  // And a second correction must resend a region whose size reflects the
  // trim: everything retained minus the 4950 consumed events.
  SendCorrectionRequest(1, 0, 2);
  auto resend_msg = ReceiveOfType(MessageType::kCorrectionResult);
  ASSERT_TRUE(resend_msg.has_value());
  BinaryReader resend_reader(resend_msg->payload);
  const CorrectionResponse resend =
      DecodeCorrectionResponse(&resend_reader).value();
  EXPECT_EQ(resend.from_offset, 4950u);
}

}  // namespace
}  // namespace deco
