#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "chaos/controller.h"
#include "chaos/schedule.h"
#include "common/clock.h"
#include "harness/experiment.h"
#include "net/fabric.h"
#include "net/message.h"

namespace deco {
namespace {

// ------------------------------------------------------------- Schedule

TEST(ChaosScheduleTest, ParseCanonicalCrashRestart) {
  auto schedule =
      ChaosSchedule::Parse("crash:local-1@300ms,restart:local-1@800ms");
  ASSERT_TRUE(schedule.ok());
  ASSERT_EQ(schedule->events().size(), 2u);
  EXPECT_EQ(schedule->events()[0].kind, FaultKind::kCrash);
  EXPECT_EQ(schedule->events()[0].target, "local-1");
  EXPECT_EQ(schedule->events()[0].at_nanos, 300 * kNanosPerMilli);
  EXPECT_EQ(schedule->events()[1].kind, FaultKind::kRestart);
  EXPECT_EQ(schedule->events()[1].at_nanos, 800 * kNanosPerMilli);
}

TEST(ChaosScheduleTest, ParseUnitsAndValues) {
  auto schedule = ChaosSchedule::Parse(
      "drop:local-0@100+200=0.5,lag:root@1s+500ms=20ms,"
      "surge:local-2@2500us+1=3");
  ASSERT_TRUE(schedule.ok());
  ASSERT_EQ(schedule->events().size(), 3u);

  const FaultEvent& drop = schedule->events()[0];
  EXPECT_EQ(drop.kind, FaultKind::kDropBurst);
  EXPECT_EQ(drop.at_nanos, 100 * kNanosPerMilli);  // default unit is ms
  EXPECT_EQ(drop.duration_nanos, 200 * kNanosPerMilli);
  EXPECT_DOUBLE_EQ(drop.drop_probability, 0.5);

  const FaultEvent& lag = schedule->events()[1];
  EXPECT_EQ(lag.kind, FaultKind::kLatencySpike);
  EXPECT_EQ(lag.target, "root");
  EXPECT_EQ(lag.at_nanos, kNanosPerSecond);
  EXPECT_EQ(lag.duration_nanos, 500 * kNanosPerMilli);
  EXPECT_EQ(lag.latency_nanos, 20 * kNanosPerMilli);

  const FaultEvent& surge = schedule->events()[2];
  EXPECT_EQ(surge.kind, FaultKind::kRateSurge);
  EXPECT_EQ(surge.at_nanos, 2'500'000);  // 2500us
  EXPECT_DOUBLE_EQ(surge.rate_factor, 3.0);
}

TEST(ChaosScheduleTest, SpecRoundTrips) {
  ChaosSchedule schedule;
  schedule.Crash("local-1", 300 * kNanosPerMilli)
      .Restart("local-1", 800 * kNanosPerMilli)
      .DropBurst("local-0", 100 * kNanosPerMilli, 200 * kNanosPerMilli, 0.5)
      .LatencySpike("root", kNanosPerSecond, 500 * kNanosPerMilli,
                    20 * kNanosPerMilli)
      .Partition("local-2", 50 * kNanosPerMilli, 25 * kNanosPerMilli)
      .RateSurge("local-0", 400 * kNanosPerMilli, kNanosPerSecond, 2.5);
  const std::string spec = schedule.ToSpecString();
  auto reparsed = ChaosSchedule::Parse(spec);
  ASSERT_TRUE(reparsed.ok()) << spec;
  EXPECT_EQ(reparsed->ToSpecString(), spec);
  EXPECT_EQ(reparsed->events().size(), schedule.events().size());
}

TEST(ChaosScheduleTest, ParseErrors) {
  EXPECT_TRUE(ChaosSchedule::Parse("crash").status().IsInvalidArgument());
  EXPECT_TRUE(
      ChaosSchedule::Parse("crash:local-1").status().IsInvalidArgument());
  EXPECT_TRUE(
      ChaosSchedule::Parse("melt:local-1@300ms").status().IsInvalidArgument());
  EXPECT_TRUE(ChaosSchedule::Parse("crash:@300ms").status()
                  .IsInvalidArgument());  // empty target
  EXPECT_TRUE(ChaosSchedule::Parse("crash:a@3parsecs").status()
                  .IsInvalidArgument());  // bad unit
  EXPECT_TRUE(ChaosSchedule::Parse("lag:a@300ms+100ms").status()
                  .IsInvalidArgument());  // lag needs '=<latency>'
  EXPECT_TRUE(ChaosSchedule::Parse("surge:a@300ms").status()
                  .IsInvalidArgument());  // surge needs '=<factor>'
  EXPECT_TRUE(ChaosSchedule::Parse("crash:a@300ms=1").status()
                  .IsInvalidArgument());  // '=' not allowed for crash
  EXPECT_TRUE(ChaosSchedule::Parse("drop:a@300ms+1ms=1.5").status()
                  .IsInvalidArgument());  // probability > 1
  EXPECT_TRUE(ChaosSchedule::Parse("surge:a@300ms+1ms=0").status()
                  .IsInvalidArgument());  // factor must be positive
}

TEST(ChaosScheduleTest, ValidateCrashRestartAlternation) {
  // Restart without a prior crash.
  EXPECT_TRUE(
      ChaosSchedule().Restart("a", 100).Validate().IsInvalidArgument());
  // Double crash.
  EXPECT_TRUE(ChaosSchedule()
                  .Crash("a", 100)
                  .Crash("a", 200)
                  .Validate()
                  .IsInvalidArgument());
  // A final crash without restart is fine (node stays dead).
  EXPECT_TRUE(ChaosSchedule().Crash("a", 100).Validate().ok());
  // Pairing is checked in *time* order, not list order.
  EXPECT_TRUE(
      ChaosSchedule().Restart("a", 800).Crash("a", 300).Validate().ok());
  // Independent targets do not interact.
  EXPECT_TRUE(
      ChaosSchedule().Crash("a", 100).Crash("b", 100).Validate().ok());
}

// ------------------------------------------------- Controller (ManualClock)

Message MakeBatch(NodeId src, NodeId dst) {
  Message msg;
  msg.type = MessageType::kEventBatch;
  msg.src = src;
  msg.dst = dst;
  msg.payload.assign(16, 'x');
  return msg;
}

class ChaosControllerTest : public ::testing::Test {
 protected:
  ChaosControllerTest() : clock_(0), fabric_(&clock_, /*seed=*/7) {
    root_ = fabric_.RegisterNode("root");
    local0_ = fabric_.RegisterNode("local-0");
    local1_ = fabric_.RegisterNode("local-1");
  }
  ManualClock clock_;
  NetworkFabric fabric_;
  NodeId root_, local0_, local1_;
};

TEST_F(ChaosControllerTest, ManualDriveFiresInOrderWithAudit) {
  ChaosSchedule schedule;
  schedule
      .DropBurst("local-0", 10 * kNanosPerMilli, 20 * kNanosPerMilli, 1.0)
      .Crash("local-1", 15 * kNanosPerMilli)
      .Restart("local-1", 40 * kNanosPerMilli);

  ChaosController controller(&fabric_, &clock_);
  ASSERT_TRUE(controller.Prepare(schedule).ok());
  // drop apply + drop restore + crash + restart.
  EXPECT_EQ(controller.action_count(), 4u);

  ASSERT_TRUE(controller.ApplyDue(9 * kNanosPerMilli).ok());
  EXPECT_EQ(controller.fired_count(), 0u);
  ASSERT_TRUE(controller.ApplyDue(10 * kNanosPerMilli).ok());
  EXPECT_EQ(controller.fired_count(), 1u);
  ASSERT_TRUE(controller.ApplyDue(30 * kNanosPerMilli).ok());
  EXPECT_EQ(controller.fired_count(), 3u);  // crash@15 + drop restore@30
  EXPECT_TRUE(fabric_.IsNodeDown(local1_));
  ASSERT_TRUE(controller.ApplyDue(100 * kNanosPerMilli).ok());
  EXPECT_EQ(controller.fired_count(), 4u);
  EXPECT_FALSE(fabric_.IsNodeDown(local1_));

  const std::vector<ChaosAuditEntry> audit = controller.AuditLog();
  ASSERT_EQ(audit.size(), 4u);
  EXPECT_EQ(audit[0].Describe(),
            "@10ms drop local-0 (drop_probability=1.000000 on 4 links)");
  EXPECT_EQ(audit[1].Describe(), "@15ms crash local-1 (node down)");
  EXPECT_EQ(audit[2].Describe(),
            "@30ms restore-drop local-0 (drop_probability=restored on 4 "
            "links)");
  EXPECT_EQ(audit[3].Describe(),
            "@40ms restart local-1 (node up, incarnation 1)");
}

TEST_F(ChaosControllerTest, DropBurstAppliesAndRestoresDisplacedField) {
  // Pre-existing shaping must come back after the burst.
  LinkConfig pre;
  pre.drop_probability = 0.25;
  ASSERT_TRUE(fabric_.SetLinkConfig(local0_, root_, pre).ok());

  ChaosSchedule schedule;
  schedule.DropBurst("local-0", 0, 10 * kNanosPerMilli, 1.0);
  ChaosController controller(&fabric_, &clock_);
  ASSERT_TRUE(controller.Prepare(schedule).ok());

  ASSERT_TRUE(controller.ApplyDue(0).ok());
  auto during = fabric_.GetLinkConfig(local0_, root_);
  ASSERT_TRUE(during.ok());
  EXPECT_DOUBLE_EQ(during->drop_probability, 1.0);
  // Burst at p=1.0 really eats traffic.
  ASSERT_TRUE(fabric_.Send(MakeBatch(local0_, root_)).ok());
  EXPECT_EQ(fabric_.mailbox(root_)->size(), 0u);

  ASSERT_TRUE(controller.ApplyDue(10 * kNanosPerMilli).ok());
  auto after = fabric_.GetLinkConfig(local0_, root_);
  ASSERT_TRUE(after.ok());
  EXPECT_DOUBLE_EQ(after->drop_probability, 0.25);
  // The reverse direction was saved/restored independently (default 0).
  auto reverse = fabric_.GetLinkConfig(root_, local0_);
  ASSERT_TRUE(reverse.ok());
  EXPECT_DOUBLE_EQ(reverse->drop_probability, 0.0);
}

TEST_F(ChaosControllerTest, PartitionIsolatesBothDirectionsThenHeals) {
  ChaosSchedule schedule;
  schedule.Partition("local-0", 0, 10 * kNanosPerMilli);
  ChaosController controller(&fabric_, &clock_);
  ASSERT_TRUE(controller.Prepare(schedule).ok());

  ASSERT_TRUE(controller.ApplyDue(0).ok());
  ASSERT_TRUE(fabric_.Send(MakeBatch(local0_, root_)).ok());
  ASSERT_TRUE(fabric_.Send(MakeBatch(root_, local0_)).ok());
  EXPECT_EQ(fabric_.mailbox(root_)->size(), 0u);
  EXPECT_EQ(fabric_.mailbox(local0_)->size(), 0u);
  // Unrelated links keep flowing.
  ASSERT_TRUE(fabric_.Send(MakeBatch(local1_, root_)).ok());
  EXPECT_EQ(fabric_.mailbox(root_)->size(), 1u);

  ASSERT_TRUE(controller.ApplyDue(10 * kNanosPerMilli).ok());
  ASSERT_TRUE(fabric_.Send(MakeBatch(local0_, root_)).ok());
  EXPECT_EQ(fabric_.mailbox(root_)->size(), 2u);
}

TEST_F(ChaosControllerTest, RateSurgeWritesHandleAndRestores) {
  auto handle = std::make_shared<std::atomic<double>>(1.0);
  ChaosSchedule schedule;
  schedule.RateSurge("local-0", 0, 10 * kNanosPerMilli, 3.0);

  ChaosController without(&fabric_, &clock_);
  EXPECT_TRUE(without.Prepare(schedule).IsInvalidArgument());

  ChaosController controller(&fabric_, &clock_);
  controller.AddRateHandle("local-0", handle);
  ASSERT_TRUE(controller.Prepare(schedule).ok());
  ASSERT_TRUE(controller.ApplyDue(0).ok());
  EXPECT_DOUBLE_EQ(handle->load(), 3.0);
  ASSERT_TRUE(controller.ApplyDue(10 * kNanosPerMilli).ok());
  EXPECT_DOUBLE_EQ(handle->load(), 1.0);
}

TEST_F(ChaosControllerTest, UnknownTargetRejectedAtPrepare) {
  ChaosSchedule schedule;
  schedule.Crash("no-such-node", 0);
  ChaosController controller(&fabric_, &clock_);
  EXPECT_TRUE(controller.Prepare(schedule).IsInvalidArgument());
}

TEST_F(ChaosControllerTest, DoubleStartRejected) {
  ChaosSchedule schedule;
  schedule.Crash("local-0", kNanosPerSecond);
  ChaosController controller(&fabric_, &clock_);
  ASSERT_TRUE(controller.Prepare(schedule).ok());
  ASSERT_TRUE(controller.Start().ok());
  EXPECT_FALSE(controller.Start().ok());
  controller.Stop();
}

TEST(ChaosDeterminismTest, SameSeedAndScheduleSameAuditAndDrops) {
  // The reproducibility contract: identical fabric seed + schedule +
  // message sequence => byte-identical audit transcript and identical
  // per-link drop counts.
  ChaosSchedule schedule;
  schedule
      .DropBurst("local-0", 5 * kNanosPerMilli, 10 * kNanosPerMilli, 0.5)
      .Crash("local-1", 8 * kNanosPerMilli)
      .Restart("local-1", 12 * kNanosPerMilli);

  auto run = [&](std::vector<std::string>* audit_lines,
                 uint64_t* dropped) {
    ManualClock clock(0);
    NetworkFabric fabric(&clock, /*seed=*/1234);
    const NodeId root = fabric.RegisterNode("root");
    const NodeId local0 = fabric.RegisterNode("local-0");
    fabric.RegisterNode("local-1");

    ChaosController controller(&fabric, &clock);
    ASSERT_TRUE(controller.Prepare(schedule).ok());
    ASSERT_TRUE(controller.ApplyDue(5 * kNanosPerMilli).ok());
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(fabric.Send(MakeBatch(local0, root)).ok());
    }
    ASSERT_TRUE(controller.ApplyDue(20 * kNanosPerMilli).ok());
    for (const ChaosAuditEntry& entry : controller.AuditLog()) {
      audit_lines->push_back(entry.Describe());
    }
    *dropped = fabric.link_stats(local0, root).messages_dropped;
  };

  std::vector<std::string> audit_a, audit_b;
  uint64_t dropped_a = 0, dropped_b = 0;
  run(&audit_a, &dropped_a);
  run(&audit_b, &dropped_b);

  ASSERT_EQ(audit_a.size(), 4u);
  EXPECT_EQ(audit_a, audit_b);
  EXPECT_EQ(dropped_a, dropped_b);
  EXPECT_GT(dropped_a, 50u);   // p=0.5 over 200 sends
  EXPECT_LT(dropped_a, 150u);
}

// --------------------------------------------------- Experiment integration

/// Linear interpolation of a run's (end_ts -> value) trajectory.
double TruthValueAt(const std::vector<GlobalWindowRecord>& truth,
                    EventTime ts) {
  const auto at_or_after = std::lower_bound(
      truth.begin(), truth.end(), ts,
      [](const GlobalWindowRecord& w, EventTime t) { return w.end_ts < t; });
  if (at_or_after == truth.begin()) return truth.front().value;
  if (at_or_after == truth.end()) return truth.back().value;
  const GlobalWindowRecord& hi = *at_or_after;
  const GlobalWindowRecord& lo = *(at_or_after - 1);
  if (hi.end_ts == lo.end_ts) return hi.value;
  const double frac = static_cast<double>(ts - lo.end_ts) /
                      static_cast<double>(hi.end_ts - lo.end_ts);
  return lo.value + frac * (hi.value - lo.value);
}

/// Mean |chaos - truth| / mean |truth| over the last quarter of the chaos
/// run's windows, aligned on event time (window indices shift after a
/// removal, event time does not).
double TailRelativeError(const RunReport& truth, const RunReport& chaos) {
  const size_t first = chaos.windows.size() - chaos.windows.size() / 4;
  const EventTime truth_max = truth.windows.back().end_ts;
  double err_sum = 0.0;
  double truth_sum = 0.0;
  for (size_t i = first; i < chaos.windows.size(); ++i) {
    const GlobalWindowRecord& w = chaos.windows[i];
    if (w.end_ts > truth_max) continue;
    const double expected = TruthValueAt(truth.windows, w.end_ts);
    err_sum += std::fabs(w.value - expected);
    truth_sum += std::fabs(expected);
  }
  return truth_sum > 0.0 ? err_sum / truth_sum : 0.0;
}

ExperimentConfig ChaosBaseConfig() {
  ExperimentConfig config;
  config.scheme = Scheme::kDecoSync;
  config.query.window = WindowSpec::CountTumbling(10'000);
  config.query.aggregate = AggregateKind::kSum;
  config.num_locals = 3;
  config.streams_per_local = 2;
  // ~2 s of stream per local (two 2e6/s streams): long enough that the
  // post-rejoin catch-up transient has decayed out of the measured tail.
  config.events_per_local = 8'000'000;
  config.base_rate = 2e6;
  config.rate_change = 0.01;
  config.root_options.node_timeout_nanos = 120 * kNanosPerMilli;
  return config;
}

constexpr TimeNanos kCrashAt = 300 * kNanosPerMilli;
constexpr TimeNanos kRestartAt = 800 * kNanosPerMilli;

// The PR's acceptance scenario: Deco_sync under the canonical crash +
// restart of local-1. (a) the root detects the crash within the failure
// detection bound, (b) the restarted local is re-admitted and contributes
// events again, (c) the post-recovery tail tracks the fault-free run to
// well under 1% relative error.
TEST(ChaosIntegrationTest, DecoSyncCrashRestartRecovers) {
  ExperimentConfig config = ChaosBaseConfig();

  auto truth = RunExperiment(config);
  ASSERT_TRUE(truth.ok()) << truth.status().ToString();

  config.chaos.schedule =
      ChaosSchedule().Crash("local-1", kCrashAt).Restart("local-1",
                                                         kRestartAt);
  std::vector<ChaosAuditEntry> audit;
  config.chaos.audit = &audit;
  auto chaos = RunExperiment(config);
  ASSERT_TRUE(chaos.ok()) << chaos.status().ToString();
  ASSERT_EQ(audit.size(), 2u);  // both actions fired before the run ended

  // (a) Crash detected by the per-node timeout (paper §4.3.4): the removal
  // lands after crash + timeout, and within a generous scheduling margin
  // (the root checks timeouts on a timeout/4 receive cadence).
  ASSERT_FALSE(chaos->membership.empty());
  const MembershipEvent& removal = chaos->membership.front();
  EXPECT_FALSE(removal.rejoined);
  EXPECT_EQ(removal.node, 1u);
  const TimeNanos detect_offset =
      removal.at_nanos - chaos->start_wall_nanos - kCrashAt;
  EXPECT_GE(detect_offset, config.root_options.node_timeout_nanos / 2);
  EXPECT_LE(detect_offset,
            2 * config.root_options.node_timeout_nanos +
                100 * kNanosPerMilli);

  // (b) The restarted local rejoined and contributed events afterwards.
  ASSERT_EQ(chaos->membership.size(), 2u);
  const MembershipEvent& rejoin = chaos->membership[1];
  EXPECT_TRUE(rejoin.rejoined);
  EXPECT_EQ(rejoin.node, 1u);
  EXPECT_GE(rejoin.at_nanos - chaos->start_wall_nanos, kRestartAt);
  const ConsumptionLog& consumption = chaos->consumption;
  uint64_t node1_tail = 0;
  const size_t tail_start =
      consumption.num_windows() - consumption.num_windows() / 4;
  for (size_t w = tail_start; w < consumption.num_windows(); ++w) {
    node1_tail += consumption.window(w)[1];
  }
  EXPECT_GT(node1_tail, 0u);

  // (c) Post-recovery accuracy vs the fault-free ground truth.
  ASSERT_GT(chaos->windows_emitted, 100u);
  const double tail_error = TailRelativeError(*truth, *chaos);
  EXPECT_LT(tail_error, 0.01) << "tail relative error " << tail_error;
}

// Lighter async variant: the rejoin path must also close under the
// non-blocking scheme (epoch bumps race with in-flight windows).
TEST(ChaosIntegrationTest, DecoAsyncCrashRestartRejoins) {
  ExperimentConfig config = ChaosBaseConfig();
  config.scheme = Scheme::kDecoAsync;
  config.events_per_local = 6'000'000;  // ~1.5 s: restart@800ms lands mid-run
  config.chaos.schedule =
      ChaosSchedule().Crash("local-1", kCrashAt).Restart("local-1",
                                                         kRestartAt);

  auto chaos = RunExperiment(config);
  ASSERT_TRUE(chaos.ok()) << chaos.status().ToString();
  ASSERT_EQ(chaos->membership.size(), 2u);
  EXPECT_FALSE(chaos->membership[0].rejoined);
  EXPECT_TRUE(chaos->membership[1].rejoined);
  EXPECT_GT(chaos->windows_emitted, 100u);

  const ConsumptionLog& consumption = chaos->consumption;
  uint64_t node1_tail = 0;
  const size_t tail_start =
      consumption.num_windows() - consumption.num_windows() / 4;
  for (size_t w = tail_start; w < consumption.num_windows(); ++w) {
    node1_tail += consumption.window(w)[1];
  }
  EXPECT_GT(node1_tail, 0u);
}

// Crash chaos against a Deco scheme without failure detection must be
// rejected up front instead of hanging the run.
TEST(ChaosIntegrationTest, CrashWithoutTimeoutRejected) {
  ExperimentConfig config = ChaosBaseConfig();
  config.root_options.node_timeout_nanos = 0;
  config.chaos.schedule = ChaosSchedule().Crash("local-1", kCrashAt);
  EXPECT_TRUE(RunExperiment(config).status().IsInvalidArgument());
}

TEST(ChaosIntegrationTest, MonlocalCrashRejected) {
  ExperimentConfig config = ChaosBaseConfig();
  config.scheme = Scheme::kDecoMonLocal;
  config.chaos.schedule =
      ChaosSchedule().Crash("local-1", kCrashAt).Restart("local-1",
                                                         kRestartAt);
  EXPECT_TRUE(RunExperiment(config).status().IsNotSupported());
}

}  // namespace
}  // namespace deco
